// Performance anti-pattern rules IMP030..IMP037 over the rank-symbolic
// traces, each finding carrying a cost-model-derived estimated saving.
//
// The rules only run on programs the simulator resolved exactly and
// whose communication graph is consistent (lint.cpp gates on that), so
// every estimate below can assume matched, deadlock-free traces. Every
// saving is computed as (price of what the program does) minus (price
// of the rewrite the fix-it suggests), both over src/sim/costmodel;
// a rule stays silent unless that difference is positive.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/costmodel.h"
#include "trans/analysis/perfmodel.h"

namespace impacc::trans::analysis {

namespace {

/// "1.23 ms" style rendering for finding messages.
std::string human_seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3g s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3g ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g us", s * 1e6);
  }
  return buf;
}

std::string human_bytes(std::uint64_t b) {
  char buf[64];
  if (b >= (1u << 20) && b % (1u << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%llu MiB",
                  static_cast<unsigned long long>(b >> 20));
  } else if (b >= (1u << 10) && b % (1u << 10) == 0) {
    std::snprintf(buf, sizeof buf, "%llu KiB",
                  static_cast<unsigned long long>(b >> 10));
  } else {
    std::snprintf(buf, sizeof buf, "%llu bytes",
                  static_cast<unsigned long long>(b));
  }
  return buf;
}

struct RuleCtx {
  const RankSimResult& sim;
  const CommGraph& g;
  const PerfParams& p;
  std::vector<Diagnostic>* out;

  const RankOp& op_at(const OpRef& ref) const {
    return sim.traces[static_cast<std::size_t>(ref.first)].ops[ref.second];
  }

  int node_of(int rank) const {
    return rank / std::max(1, p.tasks_per_node);
  }

  /// Payload bytes of one p2p/collective op, when its count resolved.
  std::optional<std::uint64_t> op_bytes(const RankOp& o) const {
    if (!o.count.has_value() || *o.count <= 0) return std::nullopt;
    std::uint64_t esz = mpi_dtype_bytes(o.dtype);
    if (esz == 0) {
      esz = infer_elem_size(sim, o.buffer, p.default_elem_size);
    }
    return static_cast<std::uint64_t>(*o.count) * esz;
  }

  /// The matched edge of op (r,i), or nullptr when unmatched.
  const CommEdge* edge_of(int r, std::size_t i) const {
    const auto it = g.edge_of.find({r, i});
    return it == g.edge_of.end() ? nullptr : &g.edges[it->second];
  }

  /// In-flight seconds of op (r,i)'s matched transfer; nullopt when the
  /// op is unmatched or its payload size did not resolve.
  std::optional<double> edge_transfer(int r, std::size_t i) const {
    const CommEdge* e = edge_of(r, i);
    if (e == nullptr) return std::nullopt;
    const RankOp& s = op_at(e->send);
    const RankOp& rv = op_at(e->recv);
    auto bytes = op_bytes(s);
    if (!bytes.has_value()) bytes = op_bytes(rv);
    if (!bytes.has_value()) return std::nullopt;
    std::uint64_t chunk = p.chunk_bytes;
    if (s.has_chunk_clause && s.chunk_bytes_clause.has_value() &&
        *s.chunk_bytes_clause >= 0) {
      chunk = static_cast<std::uint64_t>(*s.chunk_bytes_clause);
    }
    return p2p_transfer_seconds(p, *bytes, e->send.first, e->recv.first,
                                s.dev_send, rv.dev_recv, chunk);
  }

  /// Price of one host<->device bulk move of `bytes` on rank r.
  double move_cost(int r, std::uint64_t bytes) const {
    const int tpn = std::max(1, p.tasks_per_node);
    if (!p.node.devices.empty()) {
      const auto& dev =
          p.node.devices[static_cast<std::size_t>(r % tpn) %
                         p.node.devices.size()];
      return sim::pcie_copy_time(p.node, dev, bytes, /*near_socket=*/true);
    }
    return sim::host_copy_time(p.node, bytes);
  }

  bool touches(const RankOp& o, const std::string& var) const {
    if (o.buffer == var) return true;
    for (const auto& a : o.accesses) {
      if (a.var == var) return true;
    }
    return false;
  }

  void report(const char* code, int line, int column, std::string message,
              std::string fixit, double saved) const {
    if (saved <= 1e-9) return;
    message += " (estimated saving ~" + human_seconds(saved) + ")";
    Diagnostic d =
        make_diagnostic(code, line, column, std::move(message),
                        std::move(fixit));
    d.seconds_saved = saved;
    out->push_back(std::move(d));
  }
};

// --- IMP030: blocking send/recv pair a nonblocking rewrite overlaps ---------

void rule_blocking_pair(const RuleCtx& c) {
  for (const auto& trace : c.sim.traces) {
    for (std::size_t i = 0; i + 1 < trace.ops.size(); ++i) {
      const RankOp& a = trace.ops[i];
      const RankOp& b = trace.ops[i + 1];
      const bool pair = (a.kind == RankOpKind::kSend &&
                         b.kind == RankOpKind::kRecv) ||
                        (a.kind == RankOpKind::kRecv &&
                         b.kind == RankOpKind::kSend);
      if (!pair || !a.blocking || !b.blocking) continue;
      if (a.buffer.empty() || a.buffer == b.buffer) continue;
      const auto ta = c.edge_transfer(trace.rank, i);
      const auto tb = c.edge_transfer(trace.rank, i + 1);
      if (!ta.has_value() || !tb.has_value()) continue;
      const double saved = std::min(*ta, *tb);
      c.report("IMP030", a.line, a.column,
               "blocking " + a.name + " immediately followed by blocking " +
                   b.name +
                   " of an independent buffer serializes two transfers the "
                   "runtime could overlap",
               "post both nonblocking (MPI_Isend/MPI_Irecv + MPI_Waitall, "
               "or async(q) + acc wait) so the transfers proceed together",
               saved);
    }
  }
}

// --- IMP031: full-array update where the use covers a subarray --------------

void rule_full_update(const RuleCtx& c) {
  for (const auto& trace : c.sim.traces) {
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      const RankOp& u = trace.ops[i];
      if (!u.is_update) continue;
      for (const auto& acc : u.accesses) {
        if (!acc.elems.has_value() || *acc.elems <= 0) continue;
        if (!acc.write) {
          // update host(var[0:N]): find the next send of var.
          for (std::size_t j = i + 1; j < trace.ops.size(); ++j) {
            const RankOp& s = trace.ops[j];
            if (s.kind == RankOpKind::kSend && s.buffer == acc.var) {
              if (s.count.has_value() && *s.count > 0 &&
                  *s.count < *acc.elems) {
                const std::uint64_t esz =
                    mpi_dtype_bytes(s.dtype) != 0
                        ? mpi_dtype_bytes(s.dtype)
                        : c.p.default_elem_size;
                const double saved =
                    c.move_cost(trace.rank,
                                static_cast<std::uint64_t>(*acc.elems) *
                                    esz) -
                    c.move_cost(trace.rank,
                                static_cast<std::uint64_t>(*s.count) * esz);
                c.report(
                    "IMP031", u.line, u.column,
                    "update host moves all " + std::to_string(*acc.elems) +
                        " elements of '" + acc.var +
                        "' but the following send uses only " +
                        std::to_string(*s.count),
                    "update only the subarray the send covers: update "
                    "host(" +
                        acc.var + "[0:" + std::to_string(*s.count) + "])",
                    saved);
              }
              break;  // only the first use of var decides
            }
            if (c.touches(s, acc.var)) break;
          }
        } else {
          // update device(var[0:N]): look back for the recv that filled it.
          for (std::size_t j = i; j-- > 0;) {
            const RankOp& rv = trace.ops[j];
            if (rv.kind == RankOpKind::kRecv && rv.buffer == acc.var) {
              if (rv.count.has_value() && *rv.count > 0 &&
                  *rv.count < *acc.elems) {
                const std::uint64_t esz =
                    mpi_dtype_bytes(rv.dtype) != 0
                        ? mpi_dtype_bytes(rv.dtype)
                        : c.p.default_elem_size;
                const double saved =
                    c.move_cost(trace.rank,
                                static_cast<std::uint64_t>(*acc.elems) *
                                    esz) -
                    c.move_cost(trace.rank,
                                static_cast<std::uint64_t>(*rv.count) * esz);
                c.report(
                    "IMP031", u.line, u.column,
                    "update device moves all " +
                        std::to_string(*acc.elems) + " elements of '" +
                        acc.var + "' but the receive before it filled only " +
                        std::to_string(*rv.count),
                    "update only the received subarray: update device(" +
                        acc.var + "[0:" + std::to_string(*rv.count) + "])",
                    saved);
              }
              break;
            }
            if (c.touches(rv, acc.var)) break;
          }
        }
      }
    }
  }
}

// --- IMP032: copyin/copyout hoistable out of an unrolled loop ---------------

void rule_loop_copy(const RuleCtx& c) {
  for (const auto& trace : c.sim.traces) {
    // (loop line, directive line, var, direction) -> iterations seen + cost
    struct Group {
      std::set<int> iters;
      int column = 1;
      std::uint64_t bytes = 0;
      bool bytes_known = false;
    };
    std::map<std::tuple<int, int, std::string, bool>, Group> groups;
    for (const auto& op : trace.ops) {
      if (op.kind != RankOpKind::kDataMove) continue;
      if (op.loop_line == 0 || op.loop_iter < 0) continue;
      Group& grp = groups[{op.loop_line, op.line, op.buffer,
                           op.move_to_device}];
      grp.iters.insert(op.loop_iter);
      grp.column = op.column;
      if (op.count.has_value() && *op.count > 0) {
        grp.bytes = static_cast<std::uint64_t>(*op.count) *
                    infer_elem_size(c.sim, op.buffer, c.p.default_elem_size);
        grp.bytes_known = true;
      }
    }
    for (const auto& [key, grp] : groups) {
      const auto& [loop_line, line, var, to_device] = key;
      if (grp.iters.size() < 2 || !grp.bytes_known) continue;
      // The repeated transfer is redundant only if the copied side of
      // `var` cannot change between iterations.
      bool modified = false;
      for (const auto& op : trace.ops) {
        if (op.loop_line != loop_line || op.loop_depth == 0) continue;
        if (op.kind == RankOpKind::kDataMove) continue;
        if (to_device) {
          // Host image must be loop-invariant: no receive into it, no
          // update host of it, no device kernel writing it (kept fresh
          // for a later copyout).
          if (op.kind == RankOpKind::kRecv && op.buffer == var) {
            modified = true;
          }
          for (const auto& a : op.accesses) {
            if (a.var == var && (a.write || op.is_update)) modified = true;
          }
        } else {
          // Device image must be loop-invariant: no kernel at all (it
          // may write anything present) and no device receive into it.
          if (op.kind == RankOpKind::kQueueOp && !op.is_update) {
            modified = true;
          }
          if (op.kind == RankOpKind::kRecv && op.buffer == var &&
              op.dev_recv) {
            modified = true;
          }
        }
        if (modified) break;
      }
      if (modified) continue;
      const int extra = static_cast<int>(grp.iters.size()) - 1;
      const double saved =
          extra * c.move_cost(trace.rank, grp.bytes);
      c.report("IMP032", line, grp.column,
               std::string(to_device ? "copyin" : "copyout") + " of '" +
                   var + "' repeats identically across " +
                   std::to_string(grp.iters.size()) +
                   " iterations of the loop at line " +
                   std::to_string(loop_line) +
                   " although the loop never modifies it",
               "hoist the data region out of the loop so '" + var +
                   "' crosses PCIe once",
               saved);
    }
  }
}

// --- IMP033: hand-rolled all-to-all / allgather exchange --------------------

void rule_collective_shape(const RuleCtx& c) {
  const int n = c.sim.nranks;
  if (n < 3) return;
  for (const auto& trace : c.sim.traces) {
    // Nonblocking sends by (buffer); allgather shape = one buffer sent
    // to every other rank with one count/dtype.
    struct SendSet {
      std::set<long> peers;
      std::optional<long> count;
      std::string dtype;
      bool uniform = true;
      int line = 0;
      int column = 1;
      std::vector<std::size_t> ops;
    };
    std::map<std::string, SendSet> by_buffer;
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      const RankOp& op = trace.ops[i];
      if (op.kind != RankOpKind::kSend || op.blocking) continue;
      if (!op.peer.has_value() || *op.peer < 0 || *op.peer >= n) continue;
      SendSet& ss = by_buffer[op.buffer];
      if (ss.ops.empty()) {
        ss.count = op.count;
        ss.dtype = op.dtype;
        ss.line = op.line;
        ss.column = op.column;
      } else if (ss.count != op.count || ss.dtype != op.dtype) {
        ss.uniform = false;
      }
      ss.peers.insert(*op.peer);
      ss.ops.push_back(i);
    }
    for (const auto& [buffer, ss] : by_buffer) {
      if (!ss.uniform || !ss.count.has_value() || *ss.count <= 0) continue;
      if (static_cast<int>(ss.peers.size()) != n - 1) continue;
      if (ss.peers.count(trace.rank) != 0) continue;  // self-send: not a shape
      std::uint64_t esz = mpi_dtype_bytes(ss.dtype);
      if (esz == 0) esz = c.p.default_elem_size;
      const std::uint64_t block =
          static_cast<std::uint64_t>(*ss.count) * esz;
      // Flat price: each peer transfer, serialized on this rank's links,
      // plus the per-leg software overheads.
      double flat = 0;
      for (const std::size_t i : ss.ops) {
        const auto t = c.edge_transfer(trace.rank, i);
        if (!t.has_value()) {
          flat = -1;
          break;
        }
        flat += *t + sim::collective_leg_overhead(c.p.costs);
      }
      if (flat < 0) continue;
      // The shape's other half: this rank also receives one same-sized
      // block from every peer. hier_allgather_bound prices the fully
      // completed collective, so the flat side must too.
      std::set<long> recv_peers;
      for (std::size_t i = 0; i < trace.ops.size(); ++i) {
        const RankOp& op = trace.ops[i];
        if (op.kind != RankOpKind::kRecv || op.blocking) continue;
        if (op.count != ss.count || op.dtype != ss.dtype) continue;
        if (!op.peer.has_value() || *op.peer < 0 || *op.peer >= n) continue;
        if (!recv_peers.insert(*op.peer).second) continue;
        const auto t = c.edge_transfer(trace.rank, i);
        if (!t.has_value()) {
          flat = -1;
          break;
        }
        flat += *t + sim::collective_leg_overhead(c.p.costs);
      }
      if (flat < 0 || static_cast<int>(recv_peers.size()) != n - 1) continue;
      const int tpn = std::max(1, c.p.tasks_per_node);
      const int num_nodes = (n + tpn - 1) / tpn;
      const double hier = sim::hier_allgather_bound(
          c.p.node, c.p.fabric, num_nodes, tpn, block, c.p.costs);
      c.report("IMP033", ss.line, ss.column,
               "every rank sends '" + buffer + "' (" + human_bytes(block) +
                   ") to all " + std::to_string(n - 1) +
                   " peers — an allgather in point-to-point clothing; the "
                   "hierarchical collective crosses the fabric once per "
                   "node instead of once per peer",
               "replace the exchange with MPI_Allgather and let the "
               "node-aware path share payloads intra-node",
               flat - hier);
    }
  }
}

// --- IMP034: forced-flat collective above the Rabenseifner crossover --------

void rule_flat_collective(const RuleCtx& c) {
  const int n = c.sim.nranks;
  const int tpn = std::max(1, c.p.tasks_per_node);
  const int num_nodes = (n + tpn - 1) / tpn;
  std::set<std::pair<std::string, int>> seen;  // one finding per site
  for (const auto& trace : c.sim.traces) {
    for (const auto& op : trace.ops) {
      if (op.kind != RankOpKind::kCollective || !op.forced_flat) continue;
      const auto bytes = c.op_bytes(op);
      if (!bytes.has_value()) continue;
      if (*bytes < sim::kRabenseifnerCrossoverBytes) continue;
      if (!seen.insert({op.name, op.line}).second) continue;
      const bool gather = op.name == "MPI_Allgather" ||
                          op.name == "MPI_Alltoall" ||
                          op.name == "MPI_Gather" ||
                          op.name == "MPI_Scatter";
      const double flat =
          gather ? sim::flat_allgather_estimate(c.p.node, c.p.fabric, n,
                                                num_nodes, *bytes, c.p.costs)
                 : sim::flat_allreduce_estimate(c.p.node, c.p.fabric, n,
                                                num_nodes, *bytes,
                                                c.p.costs);
      const double hier =
          gather ? sim::hier_allgather_bound(c.p.node, c.p.fabric, num_nodes,
                                             tpn, *bytes, c.p.costs)
                 : sim::hier_allreduce_estimate(c.p.node, c.p.fabric,
                                                num_nodes, tpn, *bytes,
                                                c.p.costs);
      c.report("IMP034", op.line, op.column,
               "'flat' forces the single-level " + op.name + " on a " +
                   human_bytes(*bytes) +
                   " payload above the 64 KiB Rabenseifner crossover, "
                   "where the bandwidth-optimal hierarchical schedule wins",
               "drop the flat clause and let the runtime pick the "
               "node-aware reduce-scatter path",
               flat - hier);
    }
  }
}

// --- IMP035: independent sends serialized on one activity queue ------------

void rule_serialized_queue(const RuleCtx& c) {
  for (const auto& trace : c.sim.traces) {
    // Rebuild each queue's item order, then look for runs of >= 2
    // consecutive sends with pairwise-distinct buffers.
    std::map<std::string, std::vector<std::size_t>> queue_items;
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      const RankOp& op = trace.ops[i];
      if (op.has_queue && (op.kind == RankOpKind::kSend ||
                           op.kind == RankOpKind::kRecv ||
                           op.kind == RankOpKind::kQueueOp)) {
        queue_items[op.queue].push_back(i);
      }
    }
    for (const auto& [queue, items] : queue_items) {
      std::size_t run_begin = 0;
      while (run_begin < items.size()) {
        // Extend a run of consecutive queue-adjacent sends.
        std::size_t run_end = run_begin;
        std::set<std::string> buffers;
        std::vector<double> times;
        double wire = 0;
        while (run_end < items.size()) {
          const RankOp& op = trace.ops[items[run_end]];
          if (op.kind != RankOpKind::kSend) break;
          if (buffers.count(op.buffer) != 0) break;  // reuse: dependent
          const auto t = c.edge_transfer(trace.rank, items[run_end]);
          if (!t.has_value()) break;
          const CommEdge* e = c.edge_of(trace.rank, items[run_end]);
          const RankOp& sop = c.op_at(e->send);
          const auto bytes = c.op_bytes(sop);
          buffers.insert(op.buffer);
          times.push_back(*t);
          if (bytes.has_value()) {
            std::uint64_t chunk = c.p.chunk_bytes;
            if (sop.has_chunk_clause && sop.chunk_bytes_clause.has_value() &&
                *sop.chunk_bytes_clause >= 0) {
              chunk = static_cast<std::uint64_t>(*sop.chunk_bytes_clause);
            }
            wire += p2p_wire_seconds(c.p, *bytes, e->send.first,
                                     e->recv.first, sop.dev_send,
                                     c.op_at(e->recv).dev_recv, chunk);
          }
          ++run_end;
        }
        if (times.size() >= 2) {
          double serial = 0;
          double longest = 0;
          for (const double t : times) {
            serial += t;
            longest = std::max(longest, t);
          }
          // Distinct queues overlap everything but the shared fabric.
          const double overlapped = std::max(longest, wire);
          const RankOp& first = trace.ops[items[run_begin]];
          c.report("IMP035", first.line, first.column,
                   std::to_string(times.size()) +
                       " independent sends share async queue " +
                       (queue.empty() ? std::string("<no-value>") : queue) +
                       ", so their transfers run back-to-back",
                   "give each send its own async queue (and wait on all "
                   "of them) so the copies overlap",
                   serial - overlapped);
        }
        run_begin = std::max(run_end, run_begin + 1);
      }
    }
  }
}

// --- IMP036: disabled or pessimal chunk pipeline ----------------------------

void rule_chunk_pipeline(const RuleCtx& c) {
  for (const auto& e : c.g.edges) {
    const RankOp& s = c.op_at(e.send);
    const RankOp& rv = c.op_at(e.recv);
    if (!s.has_chunk_clause || !s.chunk_bytes_clause.has_value()) continue;
    if (c.node_of(e.send.first) == c.node_of(e.recv.first)) continue;
    if (!s.dev_send && !rv.dev_recv) continue;  // no staging to pipeline
    auto bytes = c.op_bytes(s);
    if (!bytes.has_value()) bytes = c.op_bytes(rv);
    if (!bytes.has_value()) continue;
    const std::uint64_t given_chunk =
        *s.chunk_bytes_clause > 0
            ? static_cast<std::uint64_t>(*s.chunk_bytes_clause)
            : 0;
    const double t_given =
        p2p_transfer_seconds(c.p, *bytes, e.send.first, e.recv.first,
                             s.dev_send, rv.dev_recv, given_chunk);
    double t_best = t_given;
    std::uint64_t best_chunk = given_chunk;
    for (const std::uint64_t cand :
         {std::uint64_t{64} << 10, std::uint64_t{256} << 10,
          std::uint64_t{1} << 20, std::uint64_t{4} << 20, *bytes}) {
      if (cand >= *bytes && cand != *bytes) continue;
      const double t =
          p2p_transfer_seconds(c.p, *bytes, e.send.first, e.recv.first,
                               s.dev_send, rv.dev_recv, cand);
      if (t < t_best) {
        t_best = t;
        best_chunk = cand;
      }
    }
    if (t_given <= 1.2 * t_best) continue;  // within tolerance of optimal
    const std::string given_desc =
        given_chunk == 0 ? std::string("chunk(0) disables pipelining")
                         : "chunk(" + std::to_string(given_chunk) +
                               ") is far from the optimum";
    c.report("IMP036", s.line, s.column,
             given_desc + " for this " + human_bytes(*bytes) +
                 " internode device transfer; staging and wire no longer "
                 "overlap",
             "use chunk(" + std::to_string(best_chunk) +
                 ") (or drop the clause for the runtime default) to "
                 "pipeline the stages",
             t_given - t_best);
  }
}

// --- IMP037: wait placed earlier than the first true use --------------------

void rule_early_wait(const RuleCtx& c) {
  for (const auto& trace : c.sim.traces) {
    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
      const RankOp& w = trace.ops[i];
      if (w.kind != RankOpKind::kAccWait) continue;
      // Buffers and transfer times still outstanding at this wait.
      std::set<std::string> pending;
      double longest = 0;
      for (std::size_t j = i; j-- > 0;) {
        const RankOp& prev = trace.ops[j];
        if (prev.kind == RankOpKind::kAccWait) break;
        if ((prev.kind != RankOpKind::kSend &&
             prev.kind != RankOpKind::kRecv) ||
            !prev.has_queue) {
          continue;
        }
        const bool covered =
            w.wait_all ||
            std::find(w.wait_queues.begin(), w.wait_queues.end(),
                      prev.queue) != w.wait_queues.end();
        if (!covered) continue;
        pending.insert(prev.buffer);
        const auto t = c.edge_transfer(trace.rank, j);
        if (t.has_value()) longest = std::max(longest, *t);
      }
      if (pending.empty() || longest <= 0) continue;
      // Walk forward: host work that does not touch the pending buffers
      // could run before the wait; stop at the first true use or at the
      // next synchronization boundary.
      double movable = 0;
      for (std::size_t j = i + 1; j < trace.ops.size(); ++j) {
        const RankOp& nxt = trace.ops[j];
        bool uses = false;
        for (const auto& var : pending) {
          if (c.touches(nxt, var)) uses = true;
        }
        if (uses || nxt.kind == RankOpKind::kAccWait ||
            nxt.kind == RankOpKind::kHostWait ||
            nxt.kind == RankOpKind::kCollective) {
          break;
        }
        if (nxt.kind == RankOpKind::kDataMove &&
            nxt.count.has_value() && *nxt.count > 0) {
          movable += c.move_cost(
              trace.rank,
              static_cast<std::uint64_t>(*nxt.count) *
                  infer_elem_size(c.sim, nxt.buffer,
                                  c.p.default_elem_size));
        } else if (nxt.is_update) {
          for (const auto& a : nxt.accesses) {
            if (!a.elems.has_value() || *a.elems <= 0) continue;
            movable += c.move_cost(
                trace.rank,
                static_cast<std::uint64_t>(*a.elems) *
                    infer_elem_size(c.sim, a.var, c.p.default_elem_size));
          }
        } else if ((nxt.kind == RankOpKind::kSend ||
                    nxt.kind == RankOpKind::kRecv) &&
                   nxt.blocking) {
          const auto t = c.edge_transfer(trace.rank, j);
          if (t.has_value()) movable += *t;
        }
      }
      if (movable <= 0) continue;
      c.report("IMP037", w.line, w.column,
               "this wait blocks " + human_seconds(movable) +
                   " of host work that never touches the in-flight "
                   "buffers; the transfers could still be overlapping it",
               "move the wait down to just before the first real use of "
               "the data",
               std::min(movable, longest));
    }
  }
}

}  // namespace

void check_perf_rules(const RankSimResult& sim, const CommGraph& graph,
                      const PerfParams& params,
                      std::vector<Diagnostic>* out) {
  const RuleCtx ctx{sim, graph, params, out};
  rule_blocking_pair(ctx);
  rule_full_update(ctx);
  rule_loop_copy(ctx);
  rule_collective_shape(ctx);
  rule_flat_collective(ctx);
  rule_serialized_queue(ctx);
  rule_chunk_pipeline(ctx);
  rule_early_wait(ctx);
}

}  // namespace impacc::trans::analysis
