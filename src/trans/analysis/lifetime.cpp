#include "trans/analysis/lifetime.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

namespace impacc::trans::analysis {

namespace {

/// One outstanding nonblocking p2p operation on a rank.
struct Pending {
  std::string request_expr;  // whitespace-stripped request argument
  std::string request;       // base identifier (what waits name)
  std::string buffer;
  bool writes_buffer = false;  // receive writes; send only reads
  bool has_queue = false;
  std::string queue;
  std::string name;  // MPI routine of the post
  int line = 0;
  bool uncertain = false;  // posted under an undecidable guard / widening
};

bool is_p2p(const RankOp& op) {
  return op.kind == RankOpKind::kSend || op.kind == RankOpKind::kRecv;
}

/// Same async queue on both operations: the unified activity queue
/// executes them in order, so the access is sequenced after the post.
bool same_queue(const Pending& p, const RankOp& op) {
  return p.has_queue && op.has_queue && p.queue == op.queue;
}

struct LifetimeChecker {
  std::vector<Diagnostic>* out;
  std::set<std::pair<std::string, int>> reported;  // (code, line)

  void report(const char* code, int line, int column, std::string msg,
              std::string fixit) {
    if (!reported.insert({code, line}).second) return;
    out->push_back(make_diagnostic(code, line, column, std::move(msg),
                                   std::move(fixit)));
  }

  void check_tag_window(const RankOp& op) {
    if (!is_p2p(op) || !op.tag.has_value()) return;
    if (*op.tag < kReservedCollTagBase) return;
    report("IMP024", op.line, op.column,
           op.name + " uses tag " + std::to_string(*op.tag) +
               ", inside the tag window reserved for the runtime's "
               "hierarchical collectives (>= " +
               std::to_string(kReservedCollTagBase) +
               "); user messages could match internal traffic",
           "keep user tags below 1<<24, or derive them modulo the "
           "reserved base");
  }

  void check_buffer_conflicts(const std::vector<Pending>& pending,
                              const RankOp& op) {
    if (op.guarded_unknown) return;
    for (const auto& acc : op.accesses) {
      if (acc.var.empty()) continue;
      for (const auto& p : pending) {
        if (p.uncertain || p.buffer != acc.var) continue;
        if (!p.writes_buffer && !acc.write) continue;  // read/read is fine
        if (same_queue(p, op)) continue;
        const char* how =
            acc.write ? (p.writes_buffer ? "is written while the pending "
                                           "receive also writes it"
                                         : "is written while the pending "
                                           "send still reads it")
                      : "is read while the pending receive writes it";
        report("IMP021", op.line, op.column,
               "buffer '" + acc.var + "' " + how + ": " + p.name +
                   " at line " + std::to_string(p.line) +
                   " has not completed yet",
               "complete the request with MPI_Wait (or a covering acc "
               "wait) before touching '" +
                   acc.var + "' again, or use a second buffer");
        return;  // one report per op is enough
      }
    }
  }

  void check_request_overwrite(std::vector<Pending>* pending,
                               const RankOp& op) {
    if (op.request_expr.empty()) return;
    for (auto it = pending->begin(); it != pending->end(); ++it) {
      if (it->request_expr != op.request_expr) continue;
      if (!op.guarded_unknown && !it->uncertain) {
        std::string msg =
            "request '" + op.request_expr + "' is overwritten by " +
            op.name + " while the " + it->name + " posted at line " +
            std::to_string(it->line) + " is still pending";
        if (op.loop_iter > 0 || it->line == op.line) {
          msg += " (previous loop iteration)";
        }
        report("IMP022", op.line, op.column, std::move(msg),
               "wait on the request before reposting (move MPI_Wait "
               "inside the loop) or use one request per iteration "
               "(an array indexed by the loop variable)");
      }
      // The overwritten post can never complete; drop it so later waits
      // pair with the new post, as they do at runtime.
      pending->erase(it);
      break;
    }
  }

  void run_rank(const RankTrace& trace) {
    std::vector<Pending> pending;
    for (const auto& op : trace.ops) {
      check_tag_window(op);
      switch (op.kind) {
        case RankOpKind::kSend:
        case RankOpKind::kRecv: {
          // Overwrite first: reposting the same handle replaces the old
          // entry, which must not then also count as a buffer conflict
          // (IMP022 subsumes IMP021 for the replaced post).
          if (!op.request_expr.empty()) {
            check_request_overwrite(&pending, op);
          }
          check_buffer_conflicts(pending, op);
          if (!op.request_expr.empty()) {
            Pending p;
            p.request_expr = op.request_expr;
            p.request = op.request;
            p.buffer = op.buffer;
            p.writes_buffer = op.kind == RankOpKind::kRecv;
            p.has_queue = op.has_queue;
            p.queue = op.queue;
            p.name = op.name;
            p.line = op.line;
            p.uncertain = op.guarded_unknown;
            pending.push_back(std::move(p));
          }
          break;
        }
        case RankOpKind::kHostWait:
          if (!op.request.empty()) {
            pending.erase(
                std::remove_if(pending.begin(), pending.end(),
                               [&](const Pending& p) {
                                 return p.request == op.request;
                               }),
                pending.end());
          }
          break;
        case RankOpKind::kAccWait:
          pending.erase(
              std::remove_if(
                  pending.begin(), pending.end(),
                  [&](const Pending& p) {
                    if (!p.has_queue) return false;
                    return op.wait_all ||
                           std::find(op.wait_queues.begin(),
                                     op.wait_queues.end(),
                                     p.queue) != op.wait_queues.end();
                  }),
              pending.end());
          break;
        case RankOpKind::kCollective:
        case RankOpKind::kQueueOp:
        case RankOpKind::kHostAccess:
          check_buffer_conflicts(pending, op);
          break;
        case RankOpKind::kDataMove:
          // Bulk host<->device staging is invisible to request/buffer
          // lifetimes (no accesses, no queue); perf-model input only.
          break;
      }
    }
    // Entries still pending at end of trace are IMP009's (host path) or
    // IMP006's (unwaited queue) to report; not re-flagged here.
  }
};

}  // namespace

void check_lifetimes(const RankSimResult& sim,
                     std::vector<Diagnostic>* out) {
  LifetimeChecker checker{out, {}};
  for (const auto& trace : sim.traces) {
    checker.run_rank(trace);
  }
}

}  // namespace impacc::trans::analysis
