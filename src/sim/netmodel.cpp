#include "sim/netmodel.h"

namespace impacc::sim {

Time internode_transfer_time(const FabricDesc& fabric, const BufferPlace& src,
                             const BufferPlace& dst, std::uint64_t bytes) {
  Time t = 0;
  // Sender side: device buffers stage to pinned host memory unless the
  // fabric can read device memory directly (GPUDirect RDMA).
  if (src.device != nullptr && !fabric.gpudirect_rdma) {
    t += pcie_copy_time(*src.node, *src.device, bytes, src.near_socket);
  }
  t += fabric_time(fabric, bytes);
  // Receiver side symmetric.
  if (dst.device != nullptr && !fabric.gpudirect_rdma) {
    t += pcie_copy_time(*dst.node, *dst.device, bytes, dst.near_socket);
  }
  return t;
}

bool is_eager(const FabricDesc& /*fabric*/, std::uint64_t bytes) {
  return bytes <= kEagerThreshold;
}

}  // namespace impacc::sim
