// Virtual time. All simulated costs are expressed in seconds (double).
#pragma once

namespace impacc::sim {

/// Virtual time in seconds.
using Time = double;

constexpr Time from_us(double us) { return us * 1e-6; }
constexpr Time from_ms(double ms) { return ms * 1e-3; }
constexpr double to_us(Time t) { return t * 1e6; }
constexpr double to_ms(Time t) { return t * 1e3; }

/// Bandwidth helper: bytes / seconds -> GB/s (decimal GB, as in the paper's
/// bandwidth plots).
constexpr double gbps(double bytes, Time seconds) {
  return seconds > 0 ? bytes / seconds / 1e9 : 0.0;
}

}  // namespace impacc::sim
