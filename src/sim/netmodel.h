// Internode communication path model (section 3.7 of the paper).
#pragma once

#include <cstdint>

#include "sim/costmodel.h"
#include "sim/topology.h"

namespace impacc::sim {

/// Where a message buffer lives on its node.
struct BufferPlace {
  const NodeDesc* node = nullptr;
  const DeviceDesc* device = nullptr;  // nullptr => host memory
  bool near_socket = true;             // task pinned near the device?
};

/// End-to-end internode transfer time for one message.
///
/// Device-resident buffers either ride GPUDirect RDMA (wire only) when the
/// fabric supports it, or stage through pre-pinned host memory: an
/// asynchronous DtoH before the wire on the sender, an HtoD issued by the
/// message handler after the wire on the receiver.
Time internode_transfer_time(const FabricDesc& fabric, const BufferPlace& src,
                             const BufferPlace& dst, std::uint64_t bytes);

/// Host-side time a sender spends in an *eager* internode send before the
/// call returns (small messages are buffered and sent in the background;
/// large ones rendezvous and overlap differently). Used by the MPI layer to
/// decide how much of the transfer blocks the caller.
bool is_eager(const FabricDesc& fabric, std::uint64_t bytes);

/// Eager protocol threshold (bytes).
constexpr std::uint64_t kEagerThreshold = 8192;

}  // namespace impacc::sim
