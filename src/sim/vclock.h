// Per-entity virtual clocks.
//
// Each task fiber and each device activity queue owns a VirtualClock.
// Operations advance the owner's clock by their modeled cost; communication
// merges clocks (a receive cannot complete before the matching send's data
// would have arrived). The run's makespan is the maximum clock at finalize.
#pragma once

#include <algorithm>

#include "sim/time.h"

namespace impacc::sim {

class VirtualClock {
 public:
  Time now() const { return now_; }

  /// Advance by a non-negative duration; returns the new time.
  Time advance(Time dt) {
    if (dt > 0) now_ += dt;
    return now_;
  }

  /// Merge with another timeline: this clock cannot be earlier than `t`.
  Time merge(Time t) {
    now_ = std::max(now_, t);
    return now_;
  }

  void reset(Time t = 0) { now_ = t; }

 private:
  Time now_ = 0;
};

}  // namespace impacc::sim
