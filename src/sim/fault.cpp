#include "sim/fault.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace impacc::sim {
namespace {

// Full-consume strict number parse: the whole token must be numeric.
bool parse_double_strict(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_int_strict(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// splitmix64 — tiny, seedable, and stable across platforms, which is all
// the seed-sweep matrix needs.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool parse_token(const std::string& tok, FaultPlan* out) {
  auto at = tok.find('@');
  auto colon = tok.find(':');
  if (at == std::string::npos || colon == std::string::npos || colon > at) {
    return false;
  }
  std::string kind = tok.substr(0, colon);
  std::string target = tok.substr(colon + 1, at - colon - 1);
  std::string when = tok.substr(at + 1);
  double t = 0;
  if (!parse_double_strict(when, &t) || t <= 0) return false;

  if (kind == "node") {
    long node = 0;
    if (!parse_int_strict(target, &node) || node < 0) return false;
    FaultEvent ev;
    ev.node = static_cast<int>(node);
    ev.device = -1;
    ev.time = t;
    out->events.push_back(ev);
    return true;
  }
  if (kind == "dev") {
    // target is "<node>.<local_index>"
    auto dot = target.find('.');
    if (dot == std::string::npos) return false;
    long node = 0, dev = 0;
    if (!parse_int_strict(target.substr(0, dot), &node) || node < 0) {
      return false;
    }
    if (!parse_int_strict(target.substr(dot + 1), &dev) || dev < 0) {
      return false;
    }
    FaultEvent ev;
    ev.node = static_cast<int>(node);
    ev.device = static_cast<int>(dev);
    ev.time = t;
    out->events.push_back(ev);
    return true;
  }
  if (kind == "seed") {
    long seed = 0;
    if (!parse_int_strict(target, &seed) || seed < 0) return false;
    FaultPlan::Seed s;
    s.seed = static_cast<unsigned>(seed);
    s.horizon = t;
    out->seeds.push_back(s);
    return true;
  }
  return false;
}

}  // namespace

bool parse_fault_plan(const std::string& spec, FaultPlan* out) {
  bool all_ok = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    auto sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    std::string tok = spec.substr(pos, sep - pos);
    // Trim surrounding whitespace so "node:1@0.002; seed:3@0.01" works.
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.front()))) {
      tok.erase(tok.begin());
    }
    while (!tok.empty() && std::isspace(static_cast<unsigned char>(tok.back()))) {
      tok.pop_back();
    }
    if (!tok.empty() && !parse_token(tok, out)) {
      IMPACC_LOG_WARN(
          "IMPACC_FAULT: malformed token \"%s\" ignored "
          "(expected node:<i>@<t>, dev:<i>.<d>@<t>, or seed:<s>@<horizon>)",
          tok.c_str());
      all_ok = false;
    }
    pos = sep + 1;
  }
  return all_ok;
}

void materialize_seeds(FaultPlan* plan, int num_nodes) {
  if (num_nodes <= 0) {
    plan->seeds.clear();
    return;
  }
  for (const auto& s : plan->seeds) {
    std::uint64_t h = mix64(static_cast<std::uint64_t>(s.seed) + 1);
    FaultEvent ev;
    ev.node = static_cast<int>(h % static_cast<std::uint64_t>(num_nodes));
    ev.device = -1;
    // Kill somewhere in the middle 70% of the horizon so the job has
    // both pre-fault progress and post-fault work to recover.
    double frac = 0.15 + 0.70 * (static_cast<double>(mix64(h) >> 11) /
                                 static_cast<double>(1ull << 53));
    ev.time = s.horizon * frac;
    plan->events.push_back(ev);
  }
  plan->seeds.clear();
}

std::string describe(const FaultEvent& ev) {
  char buf[96];
  if (ev.device < 0) {
    std::snprintf(buf, sizeof(buf), "node:%d@%.3fms", ev.node, ev.time * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "dev:%d.%d@%.3fms", ev.node, ev.device,
                  ev.time * 1e3);
  }
  return buf;
}

}  // namespace impacc::sim
