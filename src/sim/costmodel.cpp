#include "sim/costmodel.h"

#include <algorithm>

namespace impacc::sim {

Time host_copy_time(const NodeDesc& node, std::uint64_t bytes) {
  return node.host_copy.time(bytes);
}

Time pcie_copy_time(const NodeDesc& node, const DeviceDesc& dev,
                    std::uint64_t bytes, bool near_socket) {
  if (dev.backend == BackendKind::kHostShared) {
    // Integrated accelerator: "copies" are host memcpys (section 2.4 notes
    // they can even be elided; the data API still performs them).
    return host_copy_time(node, bytes);
  }
  if (near_socket || node.sockets <= 1) {
    return dev.pcie.time(bytes);
  }
  LinkModel far;
  far.latency = dev.pcie.latency + node.numa_far_extra_latency;
  far.bandwidth = dev.pcie.bandwidth * node.numa_far_bw_factor;
  return far.time(bytes);
}

bool peer_copy_possible(const DeviceDesc& a, const DeviceDesc& b) {
  if (&a == &b) return true;
  if (a.backend != BackendKind::kCudaLike ||
      b.backend != BackendKind::kCudaLike) {
    return false;  // GPUDirect/DirectGMA are GPU features
  }
  return a.root_complex == b.root_complex;
}

Time peer_copy_time(const DeviceDesc& a, const DeviceDesc& b,
                    std::uint64_t bytes) {
  // Single PCIe transfer at the slower endpoint's link rate, no host hop.
  LinkModel link;
  link.latency = std::max(a.pcie.latency, b.pcie.latency);
  link.bandwidth = std::min(a.pcie.bandwidth, b.pcie.bandwidth);
  return link.time(bytes);
}

Time staged_dtod_time(const NodeDesc& node, const DeviceDesc& src,
                      const DeviceDesc& dst, std::uint64_t bytes,
                      bool include_host_copy, bool near_socket) {
  Time t = pcie_copy_time(node, src, bytes, near_socket);  // DtoH
  if (include_host_copy) t += host_copy_time(node, bytes);  // HtoH (IPC stage)
  t += pcie_copy_time(node, dst, bytes, near_socket);       // HtoD
  return t;
}

Time fabric_time(const FabricDesc& fabric, std::uint64_t bytes) {
  return fabric.per_message_overhead + fabric.link.time(bytes);
}

Time kernel_time(const DeviceDesc& dev, double flops, double bytes_moved) {
  const double compute = flops / dev.flops_dp;
  const double memory = bytes_moved / dev.mem_bandwidth;
  return dev.kernel_launch_overhead + std::max(compute, memory);
}

}  // namespace impacc::sim
