#include "sim/costmodel.h"

#include <algorithm>

#include "common/types.h"

namespace impacc::sim {

Time host_copy_time(const NodeDesc& node, std::uint64_t bytes) {
  return node.host_copy.time(bytes);
}

Time pcie_copy_time(const NodeDesc& node, const DeviceDesc& dev,
                    std::uint64_t bytes, bool near_socket) {
  if (dev.backend == BackendKind::kHostShared) {
    // Integrated accelerator: "copies" are host memcpys (section 2.4 notes
    // they can even be elided; the data API still performs them).
    return host_copy_time(node, bytes);
  }
  if (near_socket || node.sockets <= 1) {
    return dev.pcie.time(bytes);
  }
  LinkModel far;
  far.latency = dev.pcie.latency + node.numa_far_extra_latency;
  far.bandwidth = dev.pcie.bandwidth * node.numa_far_bw_factor;
  return far.time(bytes);
}

bool peer_copy_possible(const DeviceDesc& a, const DeviceDesc& b) {
  if (&a == &b) return true;
  if (a.backend != BackendKind::kCudaLike ||
      b.backend != BackendKind::kCudaLike) {
    return false;  // GPUDirect/DirectGMA are GPU features
  }
  return a.root_complex == b.root_complex;
}

Time peer_copy_time(const DeviceDesc& a, const DeviceDesc& b,
                    std::uint64_t bytes) {
  // Single PCIe transfer at the slower endpoint's link rate, no host hop.
  LinkModel link;
  link.latency = std::max(a.pcie.latency, b.pcie.latency);
  link.bandwidth = std::min(a.pcie.bandwidth, b.pcie.bandwidth);
  return link.time(bytes);
}

Time staged_dtod_time(const NodeDesc& node, const DeviceDesc& src,
                      const DeviceDesc& dst, std::uint64_t bytes,
                      bool include_host_copy, bool near_socket) {
  Time t = pcie_copy_time(node, src, bytes, near_socket);  // DtoH
  if (include_host_copy) t += host_copy_time(node, bytes);  // HtoH (IPC stage)
  t += pcie_copy_time(node, dst, bytes, near_socket);       // HtoD
  return t;
}

Time fabric_time(const FabricDesc& fabric, std::uint64_t bytes) {
  return fabric.per_message_overhead + fabric.link.time(bytes);
}

LinkModel staging_link(const NodeDesc& node, const DeviceDesc& dev,
                       bool near_socket) {
  if (dev.backend == BackendKind::kHostShared) return node.host_copy;
  if (near_socket || node.sockets <= 1) return dev.pcie;
  LinkModel far;
  far.latency = dev.pcie.latency + node.numa_far_extra_latency;
  far.bandwidth = dev.pcie.bandwidth * node.numa_far_bw_factor;
  return far;
}

LinkModel wire_link(const FabricDesc& fabric) {
  LinkModel link = fabric.link;
  link.latency += fabric.per_message_overhead;
  return link;
}

std::vector<Time> chunk_pipeline_finishes(const LinkModel* stages,
                                          int num_stages,
                                          const Time* stage_avail, Time start,
                                          std::uint64_t bytes,
                                          std::uint64_t chunk_bytes) {
  IMPACC_CHECK(num_stages > 0);
  if (chunk_bytes == 0 || chunk_bytes > bytes) chunk_bytes = bytes;
  // stage_free[i]: when stage i can accept the next chunk — the previous
  // chunk's finish there, seeded with the stage's external availability.
  std::vector<Time> stage_free(static_cast<std::size_t>(num_stages), start);
  if (stage_avail != nullptr) {
    for (int i = 0; i < num_stages; ++i) {
      stage_free[static_cast<std::size_t>(i)] =
          std::max(start, stage_avail[i]);
    }
  }
  std::vector<Time> finishes;
  std::uint64_t off = 0;
  do {
    const std::uint64_t len = std::min(chunk_bytes, bytes - off);
    Time t = start;  // finish of this chunk at the previous stage
    for (int i = 0; i < num_stages; ++i) {
      auto& free_at = stage_free[static_cast<std::size_t>(i)];
      t = std::max(t, free_at) + stages[i].time(len);
      free_at = t;
    }
    finishes.push_back(t);
    off += len;
  } while (off < bytes);
  return finishes;
}

Time pipelined_transfer_time(const std::vector<LinkModel>& stages,
                             std::uint64_t bytes, std::uint64_t chunk_bytes) {
  return chunk_pipeline_finishes(stages.data(),
                                 static_cast<int>(stages.size()),
                                 /*stage_avail=*/nullptr, /*start=*/0, bytes,
                                 chunk_bytes)
      .back();
}

Time chunked_stage_total(const LinkModel& stage, std::uint64_t bytes,
                         std::uint64_t chunk_bytes) {
  if (chunk_bytes == 0 || chunk_bytes > bytes) chunk_bytes = bytes;
  Time total = 0;
  std::uint64_t off = 0;
  do {
    const std::uint64_t len = std::min(chunk_bytes, bytes - off);
    total += stage.time(len);
    off += len;
  } while (off < bytes);
  return total;
}

int collective_rounds(int n) {
  int rounds = 0;
  for (int span = 1; span < n; span <<= 1) ++rounds;
  return rounds;
}

Time collective_leg_overhead(const RuntimeCosts& costs) {
  return 2 * (costs.mpi_call_overhead + costs.sync_point_overhead +
              costs.handler_command_overhead + costs.queue_op_overhead);
}

namespace {

// Serial intra-node phase: the node handler performs the member copies one
// after another, so k-1 host copies plus their software legs.
Time intra_phase_bound(const NodeDesc& node, int tasks_per_node,
                       std::uint64_t bytes, const RuntimeCosts& costs) {
  if (tasks_per_node <= 1) return 0;
  return (tasks_per_node - 1) *
         (host_copy_time(node, bytes) + collective_leg_overhead(costs));
}

}  // namespace

Time hier_bcast_bound(const NodeDesc& node, const FabricDesc& fabric,
                      int num_nodes, int tasks_per_node, std::uint64_t bytes,
                      const RuntimeCosts& costs) {
  const Time inter = collective_rounds(num_nodes) *
                     (fabric_time(fabric, bytes) +
                      collective_leg_overhead(costs));
  return inter + intra_phase_bound(node, tasks_per_node, bytes, costs);
}

Time hier_allreduce_bound(const NodeDesc& node, const FabricDesc& fabric,
                          int num_nodes, int tasks_per_node,
                          std::uint64_t bytes, const RuntimeCosts& costs) {
  const Time leg = collective_leg_overhead(costs);
  const Time intra = intra_phase_bound(node, tasks_per_node, bytes, costs);
  // Recursive-doubling form: log2 rounds plus the non-power-of-two
  // fold-in / fold-out pair.
  const Time small = (collective_rounds(num_nodes) + 2) *
                     (fabric_time(fabric, bytes) + leg);
  // Reduce-scatter + ring form: 2*(n-1) rounds of ~bytes/n blocks.
  Time large = 0;
  if (num_nodes > 1) {
    const std::uint64_t blk =
        (bytes + static_cast<std::uint64_t>(num_nodes) - 1) /
        static_cast<std::uint64_t>(num_nodes);
    large = 2.0 * (num_nodes - 1) * (fabric_time(fabric, blk) + leg);
  }
  return intra + std::max(small, large) + intra;
}

Time hier_allgather_bound(const NodeDesc& node, const FabricDesc& fabric,
                          int num_nodes, int tasks_per_node,
                          std::uint64_t block_bytes,
                          const RuntimeCosts& costs) {
  const std::uint64_t bundle =
      static_cast<std::uint64_t>(tasks_per_node) * block_bytes;
  const std::uint64_t total = static_cast<std::uint64_t>(num_nodes) * bundle;
  Time bound = intra_phase_bound(node, tasks_per_node, block_bytes, costs);
  if (num_nodes > 1) {
    bound += (num_nodes - 1) * (fabric_time(fabric, bundle) +
                                collective_leg_overhead(costs));
  }
  return bound + intra_phase_bound(node, tasks_per_node, total, costs);
}

namespace {

/// Slowest link one leg of a flat (rank-level) collective crosses: the
/// fabric when the job spans nodes, otherwise node-local host memory.
Time flat_leg_time(const NodeDesc& node, const FabricDesc& fabric,
                   int num_nodes, std::uint64_t bytes) {
  if (num_nodes > 1) return fabric_time(fabric, bytes);
  return host_copy_time(node, bytes);
}

}  // namespace

Time flat_allreduce_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int nranks, int num_nodes, std::uint64_t bytes,
                             const RuntimeCosts& costs) {
  const Time leg = collective_leg_overhead(costs);
  return collective_rounds(nranks) *
         (flat_leg_time(node, fabric, num_nodes, bytes) + leg);
}

Time flat_allgather_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int nranks, int num_nodes,
                             std::uint64_t block_bytes,
                             const RuntimeCosts& costs) {
  if (nranks <= 1) return 0;
  const Time leg = collective_leg_overhead(costs);
  return (nranks - 1) *
         (flat_leg_time(node, fabric, num_nodes, block_bytes) + leg);
}

Time hier_allreduce_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int num_nodes, int tasks_per_node,
                             std::uint64_t bytes, const RuntimeCosts& costs) {
  const Time leg = collective_leg_overhead(costs);
  const Time intra = intra_phase_bound(node, tasks_per_node, bytes, costs);
  Time inter = 0;
  if (num_nodes > 1) {
    if (bytes >= kRabenseifnerCrossoverBytes) {
      const std::uint64_t blk =
          (bytes + static_cast<std::uint64_t>(num_nodes) - 1) /
          static_cast<std::uint64_t>(num_nodes);
      inter = 2.0 * (num_nodes - 1) * (fabric_time(fabric, blk) + leg);
    } else {
      inter = collective_rounds(num_nodes) *
              (fabric_time(fabric, bytes) + leg);
    }
  }
  return intra + inter + intra;
}

Time kernel_time(const DeviceDesc& dev, double flops, double bytes_moved) {
  const double compute = flops / dev.flops_dp;
  const double memory = bytes_moved / dev.mem_bandwidth;
  return dev.kernel_launch_overhead + std::max(compute, memory);
}

}  // namespace impacc::sim
