// Node and cluster topology descriptions.
//
// These encode everything the IMPACC runtime needs to make the decisions
// the paper describes: which socket is near which accelerator (NUMA
// pinning, section 3.3), which devices share a PCIe root complex (peer
// DtoD, section 3.7), what kind of backend a device uses (CUDA-like UVA vs
// OpenCL-like handle+mapped range, section 3.4), and the cost parameters
// that stand in for the real hardware of Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace impacc::sim {

/// Simple latency/bandwidth link: time(s) = latency + size/bandwidth.
/// This produces the classic bandwidth-vs-size saturation curves of
/// Figures 8 and 9.
struct LinkModel {
  Time latency = 0;        // seconds
  double bandwidth = 1e9;  // bytes/second (peak)

  Time time(std::uint64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

/// Accelerator families the paper evaluates (plus the "set of CPU cores as
/// an accelerator" case from section 2.1).
enum class DeviceKind : int { kNvidiaGpu = 0, kXeonPhi = 1, kCpu = 2 };

/// How the device exposes memory to the unified node VAS (section 3.4).
enum class BackendKind : int {
  kCudaLike = 0,    // UVA: device pointers are node-VAS addresses
  kOpenClLike = 1,  // cl_mem-style handles + reserved mapped host range
  kHostShared = 2,  // integrated (CPU-as-accelerator): shares host memory
};

const char* device_kind_name(DeviceKind k);

struct DeviceDesc {
  DeviceKind kind = DeviceKind::kNvidiaGpu;
  BackendKind backend = BackendKind::kCudaLike;
  std::string model;            // e.g. "NVIDIA Kepler GK210"
  int socket = 0;               // near CPU socket
  int root_complex = 0;         // PCIe root complex id within the node
  std::uint64_t mem_bytes = 0;  // device memory capacity
  double flops_dp = 1e12;       // peak double-precision FLOP/s
  double mem_bandwidth = 2e11;  // effective device memory bandwidth (B/s)
  LinkModel pcie;               // host<->device link from the *near* socket
  Time kernel_launch_overhead = from_us(8);
  int exec_units = 16;          // gang-level parallelism available
};

struct NodeDesc {
  int sockets = 2;
  int cores_per_socket = 8;
  std::uint64_t host_mem_bytes = 64ull << 30;
  LinkModel host_copy;  // intra-node host memcpy
  // NUMA penalty applied when the task's pinned socket differs from the
  // device's socket: bandwidth multiplier < 1 and extra latency. Fig. 8
  // reports up to 3.5x between near and far configurations.
  double numa_far_bw_factor = 0.5;
  Time numa_far_extra_latency = from_us(1.5);
  std::vector<DeviceDesc> devices;
};

/// Interconnect between nodes.
struct FabricDesc {
  std::string name;  // "Mellanox InfiniBand FDR", "Cray Gemini"
  LinkModel link;
  Time per_message_overhead = from_us(0.8);
  // GPUDirect-RDMA-style direct device-memory access by the NIC
  // (section 3.7): device buffers skip host staging when true.
  bool gpudirect_rdma = false;
};

/// Software-path costs. These stand in for the overheads the paper
/// attributes to each runtime structure.
struct RuntimeCosts {
  // Baseline (process-per-task) intra-node message: IPC setup per message.
  Time ipc_message_overhead = from_us(4.0);
  // IMPACC: creating a message command + handler queue scheduling
  // (the ~5% LULESH regression on Beacon comes from this, section 4.2).
  Time handler_command_overhead = from_us(0.7);
  // Enqueue of any operation onto an activity queue.
  Time queue_op_overhead = from_us(1.0);
  // Host-side cost of an MPI library call.
  Time mpi_call_overhead = from_us(0.4);
  // Host-side cost of a synchronization point (acc wait / MPI_Wait*);
  // grows with the number of outstanding requests checked.
  Time sync_point_overhead = from_us(1.5);
};

struct ClusterDesc {
  std::string name;
  std::vector<NodeDesc> nodes;
  FabricDesc fabric;
  RuntimeCosts costs;
  // MPI_THREAD_MULTIPLE support in the underlying MPI (Table 1: all three
  // systems provide it; turning it off serializes internode calls per node,
  // the ablation of section 3.7).
  bool mpi_thread_multiple = true;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  /// Total devices across the cluster.
  int total_devices() const;
};

}  // namespace impacc::sim
