// Seeded sim-layer fault injection (ROADMAP item 4, DESIGN.md section 12).
//
// A FaultPlan is a list of scheduled failures against the simulated
// cluster: kill node `i` (every task and device it hosts) or a single
// device `d` on node `i` once virtual time reaches `t`. Plans come from
// LaunchOptions::faults or the IMPACC_FAULT environment variable:
//
//   IMPACC_FAULT="node:1@0.002"          kill node 1 at t=2 ms
//   IMPACC_FAULT="dev:0.1@0.0015"        kill device 1 on node 0 at 1.5 ms
//   IMPACC_FAULT="seed:42@0.004"         derive target+time from seed 42,
//                                        kill time within (0, 4 ms]
//   IMPACC_FAULT="node:1@0.002;seed:7@0.004"   ';'-separated events
//
// Times are virtual seconds. Parsing is strict: a malformed token is
// warned about and skipped — it never silently disables injection (the
// same hardening pass as the IMPACC_WATCHDOG fix).
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace impacc::sim {

/// One scheduled failure. `device < 0` kills the whole node; otherwise it
/// kills the task with that local index on the node. The runtime marks
/// events `fired` when they take a victim down and `skipped` when their
/// target was already dead (a prior event excluded it).
struct FaultEvent {
  int node = -1;
  int device = -1;
  Time time = 0;
  bool fired = false;
  bool skipped = false;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  // Seeded events awaiting materialization: the target node and exact
  // kill time derive deterministically from (seed, horizon, num_nodes),
  // which the launch layer knows and the parser does not.
  struct Seed {
    unsigned seed = 0;
    Time horizon = 0;
  };
  std::vector<Seed> seeds;

  bool empty() const { return events.empty() && seeds.empty(); }
};

/// Parse an IMPACC_FAULT-style spec. Valid tokens are appended to `out`;
/// malformed ones are warned about (naming the token) and skipped.
/// Returns false when any token was malformed.
bool parse_fault_plan(const std::string& spec, FaultPlan* out);

/// Turn every pending seed into a concrete node-kill event: a
/// splitmix64-style hash of the seed picks the node in [0, num_nodes) and
/// a kill time in (0.15, 0.85] * horizon. Deterministic — the same
/// (seed, horizon, num_nodes) always yields the same event, which is what
/// the CI seed-sweep matrix replays.
void materialize_seeds(FaultPlan* plan, int num_nodes);

/// Human-readable one-liner for logs/tests ("node:1@2.000ms").
std::string describe(const FaultEvent& ev);

}  // namespace impacc::sim
