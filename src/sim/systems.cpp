#include "sim/systems.h"

#include "common/types.h"

namespace impacc::sim {

namespace {

// PCIe link models. Effective (not theoretical) rates, matching the
// plateaus of Fig. 8: gen3 x16 ~12 GB/s, gen2 x16 ~6 GB/s.
LinkModel pcie_gen3_x16() { return {from_us(9.0), 12.0e9}; }
LinkModel pcie_gen2_x16() { return {from_us(11.0), 6.0e9}; }

LinkModel ib_fdr() { return {from_us(1.3), 6.0e9}; }
LinkModel gemini() { return {from_us(1.6), 5.2e9}; }

DeviceDesc make_gk210(int socket, int root_complex) {
  DeviceDesc d;
  d.kind = DeviceKind::kNvidiaGpu;
  d.backend = BackendKind::kCudaLike;
  d.model = "NVIDIA Kepler GK210";
  d.socket = socket;
  d.root_complex = root_complex;
  d.mem_bytes = 12ull << 30;
  d.flops_dp = 1.45e12;      // 2496 cores @875MHz, 1/3 DP rate
  d.mem_bandwidth = 1.9e11;  // ~240 GB/s peak, ~80% achievable
  d.pcie = pcie_gen3_x16();
  d.exec_units = 13;  // SMX count
  return d;
}

DeviceDesc make_k20x(int socket, int root_complex) {
  DeviceDesc d;
  d.kind = DeviceKind::kNvidiaGpu;
  d.backend = BackendKind::kCudaLike;
  d.model = "NVIDIA Tesla K20x";
  d.socket = socket;
  d.root_complex = root_complex;
  d.mem_bytes = 6ull << 30;
  d.flops_dp = 1.31e12;  // 2688 cores @732MHz
  d.mem_bandwidth = 1.8e11;
  d.pcie = pcie_gen2_x16();
  d.exec_units = 14;
  return d;
}

DeviceDesc make_phi_5110p(int socket, int root_complex) {
  DeviceDesc d;
  d.kind = DeviceKind::kXeonPhi;
  d.backend = BackendKind::kOpenClLike;
  d.model = "Intel Xeon Phi 5110P";
  d.socket = socket;
  d.root_complex = root_complex;
  d.mem_bytes = 8ull << 30;
  d.flops_dp = 1.01e12;  // 60 cores @1.053GHz, 8-wide DP FMA
  d.mem_bandwidth = 1.6e11;
  d.pcie = pcie_gen2_x16();
  d.kernel_launch_overhead = from_us(15);  // OpenCL enqueue is heavier
  d.exec_units = 60;
  return d;
}

RuntimeCosts default_costs() { return RuntimeCosts{}; }

}  // namespace

DeviceDesc make_cpu_device(int socket, int cores, double ghz) {
  DeviceDesc d;
  d.kind = DeviceKind::kCpu;
  d.backend = BackendKind::kHostShared;
  d.model = "host CPU cores";
  d.socket = socket;
  d.root_complex = -1;  // not on PCIe
  d.mem_bytes = 0;      // shares host memory
  d.flops_dp = cores * ghz * 1e9 * 8;  // 4-wide FMA (AVX2-class)
  d.mem_bandwidth = 5.0e10;
  d.pcie = LinkModel{0, 1e12};  // unused for kHostShared
  d.kernel_launch_overhead = from_us(2);
  d.exec_units = cores;
  return d;
}

ClusterDesc make_psg(int nodes) {
  if (nodes <= 0) nodes = 1;
  NodeDesc node;
  node.sockets = 2;
  node.cores_per_socket = 16;  // E5-2698 v3
  node.host_mem_bytes = 256ull << 30;
  node.host_copy = {from_us(0.3), 11.0e9};
  // Fig. 8(a)(b): near/far ratio ~2.5-3x on the GPU node.
  node.numa_far_bw_factor = 0.36;
  node.numa_far_extra_latency = from_us(1.5);
  // 8 GK210s: 4 per socket, each socket's devices behind one root complex
  // (K80 boards hang off PLX switches under the socket's root port).
  for (int i = 0; i < 8; ++i) {
    const int socket = i / 4;
    node.devices.push_back(make_gk210(socket, socket));
  }

  ClusterDesc c;
  c.name = "PSG";
  c.nodes.assign(static_cast<std::size_t>(nodes), node);
  c.fabric = {"Mellanox InfiniBand FDR", ib_fdr(), from_us(0.8), false};
  c.costs = default_costs();
  c.mpi_thread_multiple = true;
  return c;
}

ClusterDesc make_beacon(int nodes) {
  if (nodes <= 0) nodes = 32;
  NodeDesc node;
  node.sockets = 2;
  node.cores_per_socket = 8;  // E5-2670
  node.host_mem_bytes = 256ull << 30;
  node.host_copy = {from_us(0.35), 9.0e9};
  // Fig. 8(c)(d): up to 3.5x near/far on the MIC node.
  node.numa_far_bw_factor = 0.29;
  node.numa_far_extra_latency = from_us(2.0);
  for (int i = 0; i < 4; ++i) {
    const int socket = i / 2;
    node.devices.push_back(make_phi_5110p(socket, socket));
  }

  ClusterDesc c;
  c.name = "Beacon";
  c.nodes.assign(static_cast<std::size_t>(nodes), node);
  c.fabric = {"Mellanox InfiniBand FDR", ib_fdr(), from_us(0.8), false};
  c.costs = default_costs();
  c.mpi_thread_multiple = true;
  return c;
}

ClusterDesc make_titan(int nodes) {
  if (nodes <= 0) nodes = 8192;
  NodeDesc node;
  node.sockets = 1;  // one Opteron 6274 per Gemini endpoint
  node.cores_per_socket = 16;
  node.host_mem_bytes = 32ull << 30;
  node.host_copy = {from_us(0.4), 8.0e9};
  node.numa_far_bw_factor = 1.0;  // single socket: pinning is moot
  node.numa_far_extra_latency = 0;
  node.devices.push_back(make_k20x(0, 0));

  ClusterDesc c;
  c.name = "Titan";
  c.nodes.assign(static_cast<std::size_t>(nodes), node);
  // Cray MPICH2 exploits Mellanox-OFED-GPUDirect-style direct device
  // access on Gemini (section 4.2, Fig. 9 (g)-(i)).
  c.fabric = {"Cray Gemini", gemini(), from_us(1.0), true};
  c.costs = default_costs();
  c.mpi_thread_multiple = true;
  return c;
}

ClusterDesc make_heterogeneous_demo() {
  // Mirrors Fig. 2: Node 0 has 2 GPUs, Node 1 has 1 GPU + 2 MICs,
  // Node 2 has CPUs only (its CPU cores form one accelerator).
  ClusterDesc c;
  c.name = "HeteroDemo";
  c.fabric = {"Mellanox InfiniBand FDR", ib_fdr(), from_us(0.8), false};
  c.costs = default_costs();
  c.mpi_thread_multiple = true;

  NodeDesc n0;
  n0.sockets = 2;
  n0.cores_per_socket = 8;
  n0.host_copy = {from_us(0.3), 10.0e9};
  n0.devices.push_back(make_gk210(0, 0));
  n0.devices.push_back(make_gk210(1, 1));

  NodeDesc n1 = n0;
  n1.devices.clear();
  n1.devices.push_back(make_k20x(0, 0));
  n1.devices.push_back(make_phi_5110p(0, 0));
  n1.devices.push_back(make_phi_5110p(1, 1));

  NodeDesc n2 = n0;
  n2.devices.clear();
  n2.devices.push_back(make_cpu_device(0, 16, 2.3));

  c.nodes = {n0, n1, n2};
  return c;
}

ClusterDesc make_system(const std::string& name, int nodes) {
  if (name == "psg" || name == "PSG") return make_psg(nodes);
  if (name == "beacon" || name == "Beacon") return make_beacon(nodes);
  if (name == "titan" || name == "Titan") return make_titan(nodes);
  if (name == "hetero" || name == "HeteroDemo") return make_heterogeneous_demo();
  IMPACC_CHECK_MSG(false, "unknown system preset");
}

}  // namespace impacc::sim
