#include "sim/trace.h"

#include <cstdio>

namespace impacc::sim {

void TraceSink::record(int pid, std::string tid, std::string name,
                       std::string category, sim::Time start, sim::Time end) {
  Event e;
  e.pid = pid;
  e.tid = std::move(tid);
  e.name = std::move(name);
  e.category = std::move(category);
  e.start = start;
  e.end = end;
  lock_.lock();
  events_.push_back(std::move(e));
  lock_.unlock();
}

std::size_t TraceSink::size() const {
  lock_.lock();
  const std::size_t n = events_.size();
  lock_.unlock();
  return n;
}

std::vector<TraceSink::Event> TraceSink::snapshot() const {
  lock_.lock();
  std::vector<Event> copy = events_;
  lock_.unlock();
  return copy;
}

namespace {

/// Escape the few JSON-significant characters that can appear in labels.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceSink::to_chrome_json() const {
  const std::vector<Event> events = snapshot();
  std::string out = "[\n";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    // Chrome "complete" events: ts/dur in microseconds.
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,",
                  sim::to_us(e.start), sim::to_us(e.end - e.start), e.pid);
    out += buf;
    out += "\"tid\":\"" + json_escape(e.tid) + "\",";
    out += "\"cat\":\"" + json_escape(e.category) + "\",";
    out += "\"name\":\"" + json_escape(e.name) + "\"}";
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

bool TraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace impacc::sim
