#include "sim/trace.h"

#include <cstdio>
#include <map>
#include <tuple>

namespace impacc::sim {

void TraceSink::record(int pid, std::string tid, std::string name,
                       std::string category, sim::Time start, sim::Time end) {
  Event e;
  e.phase = 'X';
  e.pid = pid;
  e.tid = std::move(tid);
  e.name = std::move(name);
  e.category = std::move(category);
  e.start = start;
  e.end = end;
  lock_.lock();
  events_.push_back(std::move(e));
  lock_.unlock();
}

void TraceSink::record_flow(bool start, std::uint64_t id, int pid,
                            std::string tid, std::string name,
                            std::string category, sim::Time t) {
  Event e;
  e.phase = start ? 's' : 'f';
  e.pid = pid;
  e.tid = std::move(tid);
  e.name = std::move(name);
  e.category = std::move(category);
  e.start = t;
  e.flow_id = id;
  lock_.lock();
  events_.push_back(std::move(e));
  lock_.unlock();
}

void TraceSink::record_counter(int pid, std::string name, std::string series,
                               sim::Time t, double value) {
  Event e;
  e.phase = 'C';
  e.pid = pid;
  e.name = std::move(name);
  e.category = std::move(series);  // reused as the counter series key
  e.start = t;
  e.value = value;
  lock_.lock();
  events_.push_back(std::move(e));
  lock_.unlock();
}

void TraceSink::record_meta(int pid, std::string meta_name,
                            std::string value) {
  Event e;
  e.phase = 'M';
  e.pid = pid;
  e.name = std::move(meta_name);
  e.category = std::move(value);  // reused as the metadata value
  lock_.lock();
  events_.push_back(std::move(e));
  lock_.unlock();
}

void TraceSink::finalize_counters(sim::Time end) {
  // Last sample per (pid, track, series). Computed from a snapshot, then
  // appended; the run is over when this is called, so no sample races in.
  struct Last {
    sim::Time t = 0;
    double value = 0;
  };
  std::map<std::tuple<int, std::string, std::string>, Last> last;
  lock_.lock();
  for (const Event& e : events_) {
    if (e.phase != 'C') continue;
    Last& l = last[{e.pid, e.name, e.category}];
    if (e.start >= l.t) l = {e.start, e.value};
  }
  lock_.unlock();
  for (const auto& [key, l] : last) {
    const auto& [pid, name, series] = key;
    if (name.find("(wall clock)") != std::string::npos) continue;
    if (l.t < end) record_counter(pid, name, series, end, l.value);
  }
}

std::size_t TraceSink::size() const {
  lock_.lock();
  const std::size_t n = events_.size();
  lock_.unlock();
  return n;
}

std::vector<TraceSink::Event> TraceSink::snapshot() const {
  lock_.lock();
  std::vector<Event> copy = events_;
  lock_.unlock();
  return copy;
}

namespace {

/// Full JSON string escaping: quotes, backslashes, and every control
/// character (user tags and kernel labels end up in event names, and a
/// stray '\t' or '\x01' must not produce an unparseable trace).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceSink::to_chrome_json() const {
  const std::vector<Event> events = snapshot();
  std::string out = "[\n";
  char buf[192];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    switch (e.phase) {
      case 's':
      case 'f':
        // Flow events bind to the complete event enclosing (pid, tid, ts);
        // bp:"e" makes the finish attach to the slice it lands in.
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"%c\",\"id\":%llu,\"ts\":%.3f,\"pid\":%d,%s",
                      e.phase,
                      static_cast<unsigned long long>(e.flow_id),
                      sim::to_us(e.start), e.pid,
                      e.phase == 'f' ? "\"bp\":\"e\"," : "");
        out += buf;
        out += "\"tid\":\"" + json_escape(e.tid) + "\",";
        out += "\"cat\":\"" + json_escape(e.category) + "\",";
        out += "\"name\":\"" + json_escape(e.name) + "\"}";
        break;
      case 'C':
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,",
                      sim::to_us(e.start), e.pid);
        out += buf;
        out += "\"name\":\"" + json_escape(e.name) + "\",";
        out += "\"args\":{\"" + json_escape(e.category) + "\":";
        std::snprintf(buf, sizeof(buf), "%.6g}}", e.value);
        out += buf;
        break;
      case 'M':
        std::snprintf(buf, sizeof(buf), "{\"ph\":\"M\",\"pid\":%d,", e.pid);
        out += buf;
        out += "\"name\":\"" + json_escape(e.name) + "\",";
        out += "\"args\":{\"name\":\"" + json_escape(e.category) + "\"}}";
        break;
      default:
        // Chrome "complete" events: ts/dur in microseconds.
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,",
                      sim::to_us(e.start), sim::to_us(e.end - e.start), e.pid);
        out += buf;
        out += "\"tid\":\"" + json_escape(e.tid) + "\",";
        out += "\"cat\":\"" + json_escape(e.category) + "\",";
        out += "\"name\":\"" + json_escape(e.name) + "\"}";
    }
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

bool TraceSink::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace impacc::sim
