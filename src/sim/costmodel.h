// Transfer and kernel cost models over the topology descriptions.
//
// Every data-movement path the runtime can choose (Fig. 6 of the paper) has
// a cost function here, so path-selection logic and the numbers it produces
// stay in one place and can be unit-tested for the paper's qualitative
// properties (near > far, fused < staged, peer DtoD ~8x staged DtoD, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/topology.h"

namespace impacc::sim {

/// Host-to-host memcpy within a node.
Time host_copy_time(const NodeDesc& node, std::uint64_t bytes);

/// Host<->device PCIe copy. `near_socket` reflects the NUMA pinning of the
/// calling task relative to the device (section 3.3 / Fig. 8).
Time pcie_copy_time(const NodeDesc& node, const DeviceDesc& dev,
                    std::uint64_t bytes, bool near_socket);

/// Whether two devices of a node can copy peer-to-peer over PCIe without
/// host involvement (GPUDirect/DirectGMA: same root complex, CUDA-like
/// backends; section 3.7).
bool peer_copy_possible(const DeviceDesc& a, const DeviceDesc& b);

/// Direct device-to-device copy over PCIe (requires peer_copy_possible).
Time peer_copy_time(const DeviceDesc& a, const DeviceDesc& b,
                    std::uint64_t bytes);

/// Device-to-device staged through host memory:
/// DtoH + HtoH (when src/dst tasks have private address spaces) + HtoD.
/// `include_host_copy` distinguishes IMPACC-fused staging (no HtoH) from
/// the baseline process model (with HtoH + IPC).
Time staged_dtod_time(const NodeDesc& node, const DeviceDesc& src,
                      const DeviceDesc& dst, std::uint64_t bytes,
                      bool include_host_copy, bool near_socket = true);

/// Internode wire time for one message of `bytes`.
Time fabric_time(const FabricDesc& fabric, std::uint64_t bytes);

// --- Chunked transfer pipeline (section 3.5) --------------------------------
//
// Large internode device transfers split into chunks so the sender's DtoH
// staging, the wire, and the receiver's HtoD staging overlap. The stages
// form a linear pipeline; each is a LinkModel charged per chunk, so the
// overlapped total converges to the bottleneck stage's bandwidth (plus the
// per-chunk latencies the split introduces).

/// Host<->device staging stage as a LinkModel. For every input,
/// staging_link(...).time(bytes) == pcie_copy_time(node, dev, bytes, near).
LinkModel staging_link(const NodeDesc& node, const DeviceDesc& dev,
                       bool near_socket);

/// Wire stage as a LinkModel with the fabric's per-message overhead folded
/// into the latency: each chunk is its own message on the wire.
LinkModel wire_link(const FabricDesc& fabric);

/// Finish time of each chunk in the LAST stage of the pipeline. Chunk j may
/// start stage i only when (a) it finished stage i-1, (b) chunk j-1 freed
/// stage i, and (c) the stage was available at all (`stage_avail`, e.g. the
/// NIC's busy-until time; pass nullptr for all-free). The first stage of
/// the first chunk starts no earlier than `start`.
std::vector<Time> chunk_pipeline_finishes(const LinkModel* stages,
                                          int num_stages,
                                          const Time* stage_avail, Time start,
                                          std::uint64_t bytes,
                                          std::uint64_t chunk_bytes);

/// Total pipelined transfer time with all stages free and start = 0.
/// Closed form for n uniform chunks: sum_i t_i(C) + (n-1) * max_i t_i(C).
Time pipelined_transfer_time(const std::vector<LinkModel>& stages,
                             std::uint64_t bytes, std::uint64_t chunk_bytes);

/// Busy time of one stage across all chunks (sum of per-chunk times); this
/// is what the stage's resource (PCIe link, NIC) is occupied for.
Time chunked_stage_total(const LinkModel& stage, std::uint64_t bytes,
                         std::uint64_t chunk_bytes);

// --- Two-level (node-aware) collective bounds (section 3.5) -----------------
//
// Closed forms for the hierarchical collectives' makespans: an intra-node
// phase serialized through the node's host memory (the handler performs the
// member copies one after another) and an inter-node phase over one leader
// per node. Tests assert the simulated collectives stay under these bounds.

/// ceil(log2(n)): rounds of a binomial / dissemination / recursive-doubling
/// schedule over n participants.
int collective_rounds(int n);

/// Generous per-leg software overhead of one point-to-point message inside
/// a collective: both endpoints pay the MPI call + sync point, and the
/// message traverses a handler command and an activity-queue operation on
/// each side.
Time collective_leg_overhead(const RuntimeCosts& costs);

/// Upper bound on the node-aware two-level broadcast makespan:
/// ceil(log2(nodes)) inter-node rounds of the full payload plus the serial
/// intra-node forwarding phase.
Time hier_bcast_bound(const NodeDesc& node, const FabricDesc& fabric,
                      int num_nodes, int tasks_per_node, std::uint64_t bytes,
                      const RuntimeCosts& costs);

/// Upper bound on the two-level allreduce makespan: intra-node reduction,
/// an inter-node leader phase (recursive doubling for short payloads,
/// reduce-scatter + ring allgather for long ones — the bound takes the
/// worse of the two forms), and intra-node distribution.
Time hier_allreduce_bound(const NodeDesc& node, const FabricDesc& fabric,
                          int num_nodes, int tasks_per_node,
                          std::uint64_t bytes, const RuntimeCosts& costs);

/// Upper bound on the two-level allgather makespan: intra-node gather of
/// `block_bytes` per rank, a ring of per-node bundles over the leaders, and
/// intra-node distribution of the assembled nodes*tasks_per_node*block
/// vector.
Time hier_allgather_bound(const NodeDesc& node, const FabricDesc& fabric,
                          int num_nodes, int tasks_per_node,
                          std::uint64_t block_bytes,
                          const RuntimeCosts& costs);

/// Inter-node payloads above this crossover switch from latency-optimal
/// recursive-doubling schedules to bandwidth-optimal reduce-scatter based
/// ones (Rabenseifner). Mirrors the runtime's collective dispatch.
constexpr std::uint64_t kRabenseifnerCrossoverBytes = 64u << 10;

// --- Flat (node-oblivious) collective estimates -----------------------------
//
// Expected makespans of the classic single-level algorithms over all ranks,
// used by the static perf analysis to price a user-forced flat collective
// (or a hand-rolled exchange) against the hierarchical path. These are
// estimates of the algorithm the runtime would actually run, not worst-case
// bounds, so they compare apples-to-apples with the estimates below.

/// Flat recursive-doubling allreduce over nranks: every round moves the
/// full payload across the slowest link any participant pair shares (the
/// fabric when the job spans nodes, host memory otherwise).
Time flat_allreduce_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int nranks, int num_nodes, std::uint64_t bytes,
                             const RuntimeCosts& costs);

/// Flat ring allgather over nranks: nranks-1 rounds of one block each.
Time flat_allgather_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int nranks, int num_nodes,
                             std::uint64_t block_bytes,
                             const RuntimeCosts& costs);

/// Expected two-level allreduce makespan with the Rabenseifner split the
/// runtime actually picks for this payload (recursive doubling below the
/// crossover, reduce-scatter + ring above), not the worst-of-both bound.
Time hier_allreduce_estimate(const NodeDesc& node, const FabricDesc& fabric,
                             int num_nodes, int tasks_per_node,
                             std::uint64_t bytes, const RuntimeCosts& costs);

/// Kernel execution: roofline of compute and memory traffic plus launch
/// overhead. `flops` and `bytes_moved` are the kernel's work estimate.
Time kernel_time(const DeviceDesc& dev, double flops, double bytes_moved);

/// Work estimate attached to kernel launches.
struct WorkEstimate {
  double flops = 0;
  double bytes = 0;

  WorkEstimate& operator+=(const WorkEstimate& o) {
    flops += o.flops;
    bytes += o.bytes;
    return *this;
  }
};

}  // namespace impacc::sim
