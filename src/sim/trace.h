// Virtual-time execution tracing.
//
// When enabled (LaunchOptions::trace_path or IMPACC_TRACE), the runtime
// records every activity-queue operation and every completed message with
// its virtual start/end times and writes a Chrome-trace JSON file
// (chrome://tracing, Perfetto). The result is exactly the paper's Fig. 5
// timeline view: host rows, device activity-queue rows, and message rows
// per node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"
#include "ult/sync.h"

namespace impacc::sim {

class TraceSink {
 public:
  struct Event {
    // Chrome trace-event phase: 'X' complete, 's'/'f' flow start/finish,
    // 'C' counter sample, 'M' metadata ("process_name" row labels; the
    // value rides in `category`).
    char phase = 'X';
    int pid = 0;  // node index
    std::string tid;
    std::string name;
    std::string category;
    sim::Time start = 0;
    sim::Time end = 0;        // 'X' only
    std::uint64_t flow_id = 0;  // 's'/'f' only
    double value = 0;           // 'C' only
  };

  /// Record one complete event (thread-safe).
  void record(int pid, std::string tid, std::string name,
              std::string category, sim::Time start, sim::Time end);

  /// Record one flow endpoint. A ph:"s" (start=true) and a ph:"f" with the
  /// same id draw an arrow between the complete events enclosing them
  /// (match by pid/tid and timestamp), linking e.g. a message's send-side
  /// slice to its receive-side slice across node pids.
  void record_flow(bool start, std::uint64_t id, int pid, std::string tid,
                   std::string name, std::string category, sim::Time t);

  /// Record one counter-track sample: `name` is the track, `series` the
  /// stacked series within it, `value` its height at virtual time `t`.
  void record_counter(int pid, std::string name, std::string series,
                      sim::Time t, double value);

  /// Record one metadata event (`ph:"M"`), e.g. ("process_name", "node0")
  /// to label a pid row in the viewer.
  void record_meta(int pid, std::string meta_name, std::string value);

  /// Append a terminal sample at `end` to every counter track whose last
  /// sample precedes it, so viewers stop extending the last value to
  /// infinity. Tracks named "... (wall clock)" live on a different time
  /// base and are skipped. Call once, after the run, with the makespan.
  void finalize_counters(sim::Time end);

  std::size_t size() const;
  std::vector<Event> snapshot() const;

  /// Serialize as a Chrome-trace JSON array (timestamps in microseconds).
  std::string to_chrome_json() const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  mutable ult::SpinLock lock_;
  std::vector<Event> events_;
};

}  // namespace impacc::sim
