#include "sim/topology.h"

namespace impacc::sim {

const char* device_kind_name(DeviceKind k) {
  switch (k) {
    case DeviceKind::kNvidiaGpu: return "nvidia";
    case DeviceKind::kXeonPhi: return "xeonphi";
    case DeviceKind::kCpu: return "cpu";
  }
  return "unknown";
}

int ClusterDesc::total_devices() const {
  int n = 0;
  for (const auto& node : nodes) n += static_cast<int>(node.devices.size());
  return n;
}

}  // namespace impacc::sim
