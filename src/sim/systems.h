// System presets encoding Table 1 of the paper.
#pragma once

#include <string>

#include "sim/topology.h"

namespace impacc::sim {

/// PSG: one node, 2x Intel Xeon E5-2698 v3, 8x NVIDIA Kepler GK210,
/// PCIe gen3 x16, Mellanox InfiniBand FDR, CUDA backend, MVAPICH2.
ClusterDesc make_psg(int nodes = 1);

/// Beacon: 2x Intel Xeon E5-2670, 4x Intel Xeon Phi 5110P per node,
/// PCIe gen2 x16, Mellanox InfiniBand FDR, OpenCL backend, Intel MPI.
ClusterDesc make_beacon(int nodes = 32);

/// Titan: AMD Opteron 6274, 1x NVIDIA Tesla K20x per node, PCIe gen2 x16,
/// Cray Gemini with GPUDirect RDMA, CUDA backend, Cray MPICH2.
ClusterDesc make_titan(int nodes = 8192);

/// A small generic heterogeneous cluster used by tests and the Fig. 2
/// mapping demo: nodes differ in accelerator count and kind.
ClusterDesc make_heterogeneous_demo();

/// Lookup by name: "psg", "beacon", "titan" (case-sensitive). `nodes <= 0`
/// selects each preset's default node count.
ClusterDesc make_system(const std::string& name, int nodes = 0);

/// A DeviceDesc for "a set of CPU cores as an accelerator" (section 2.1)
/// on the given node parameters.
DeviceDesc make_cpu_device(int socket, int cores, double ghz);

}  // namespace impacc::sim
