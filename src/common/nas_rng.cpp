#include "common/nas_rng.h"

namespace impacc::nas {

std::uint64_t RandLc::mulmod(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<std::uint64_t>(p & (kMod - 1));
}

std::uint64_t RandLc::powmod(std::uint64_t a, std::uint64_t k) {
  std::uint64_t result = 1;
  std::uint64_t base = a & (kMod - 1);
  while (k != 0) {
    if (k & 1) result = mulmod(result, base);
    base = mulmod(base, base);
    k >>= 1;
  }
  return result;
}

}  // namespace impacc::nas
