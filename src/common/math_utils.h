// Small integer/math helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>

namespace impacc {

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

/// Integer cube root for perfect cubes (LULESH task counts are x^3).
constexpr int icbrt(std::int64_t n) {
  int r = 0;
  while (static_cast<std::int64_t>(r + 1) * (r + 1) * (r + 1) <= n) ++r;
  return r;
}

constexpr bool is_perfect_cube(std::int64_t n) {
  const int r = icbrt(n);
  return static_cast<std::int64_t>(r) * r * r == n;
}

/// Splits [0, total) into `parts` nearly equal chunks; returns the begin
/// index of chunk `idx`. Chunk `idx` is [begin(idx), begin(idx+1)).
constexpr std::int64_t chunk_begin(std::int64_t total, int parts, int idx) {
  const std::int64_t base = total / parts;
  const std::int64_t rem = total % parts;
  return base * idx + (idx < rem ? idx : rem);
}

}  // namespace impacc
