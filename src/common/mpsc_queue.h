// In-order, lock-free multi-producer single-consumer queue.
//
// The paper (section 3.7) requires "two in-order and lock-free
// multi-producer (task threads) single-consumer (message handler thread)
// queues". This is the classic Vyukov intrusive MPSC queue: producers link
// nodes with one atomic exchange; the consumer walks the list. Per-producer
// FIFO ordering is preserved, which is what MPI message-ordering semantics
// need.
//
// On top of the one-at-a-time pop(), pop_all() detaches the entire pushed
// chain in a single head exchange and hands it back as an in-order Batch —
// the submission side of the handler's io_uring-style ring pipeline
// (DESIGN.md section 9). Because the detached chain is exactly the
// producers' link order, a Batch preserves per-producer FIFO by
// construction.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.h"

namespace impacc {

struct MpscQueueTestPeer;

/// Base class for nodes that can be put on an MpscQueue.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

/// Intrusive MPSC queue. The queue never owns nodes.
///
/// push() is wait-free for producers. pop() is lock-free for the single
/// consumer; it may momentarily observe an in-flight push (next pointer not
/// yet linked) and return nullptr, in which case the element will be
/// visible on a later pop — consumers must treat nullptr as "possibly more
/// later", and use empty_hint() only as a hint.
class MpscQueue {
 public:
  /// In-order view of one detached producer chain (see pop_all()). The
  /// single consumer iterates with take(); a Batch must be fully drained
  /// before the next pop()/pop_all() call on its queue, because the next
  /// drain recycles the stub node the Batch may still have to skip over.
  class Batch {
   public:
    Batch() = default;

    /// Next element in push order, or nullptr when the batch is exhausted.
    /// May spin briefly across an in-flight push window: the chain's end is
    /// known (it was the head at detach time), so any missing intermediate
    /// link is two producer instructions away from being visible.
    MpscNode* take() {
      while (cur_ != nullptr) {
        MpscNode* n = cur_;
        if (n == last_) {
          cur_ = nullptr;
        } else {
          MpscNode* next = n->next.load(std::memory_order_acquire);
          while (next == nullptr) {  // producer mid-push; the store lands
            next = n->next.load(std::memory_order_acquire);
          }
          cur_ = next;
        }
        if (n == skip_) continue;  // the recycled stub, not an element
        return n;
      }
      return nullptr;
    }

    bool empty() const { return cur_ == nullptr; }

   private:
    friend class MpscQueue;
    Batch(MpscNode* first, MpscNode* last, MpscNode* skip)
        : cur_(first), last_(last), skip_(skip) {}

    MpscNode* cur_ = nullptr;
    MpscNode* last_ = nullptr;
    MpscNode* skip_ = nullptr;
  };

  MpscQueue() : head_(&stubs_[0]), tail_(&stubs_[0]), cur_stub_(&stubs_[0]) {
    stubs_[0].next.store(nullptr, std::memory_order_relaxed);
    stubs_[1].next.store(nullptr, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueue a node. Callable from any thread/fiber.
  void push(MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    // A preempted producer here leaves the queue momentarily disconnected;
    // pop() handles that window by returning nullptr.
    prev->next.store(node, std::memory_order_release);
  }

  /// Dequeue one node, or nullptr if (apparently) empty. Single consumer.
  MpscNode* pop() {
    MpscNode* stub = cur_stub_.load(std::memory_order_relaxed);
    MpscNode* tail = tail_.load(std::memory_order_relaxed);
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == stub) {
      if (next == nullptr) return nullptr;  // empty (or in-flight push)
      tail_.store(next, std::memory_order_relaxed);
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_.store(next, std::memory_order_relaxed);
      return tail;
    }
    MpscNode* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;  // producer mid-push; retry later
    // Re-insert the stub so the consumer can take the last element.
    stub->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(stub, std::memory_order_acq_rel);
    prev->next.store(stub, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_.store(next, std::memory_order_relaxed);
      return tail;
    }
    return nullptr;
  }

  /// Detach everything currently pushed in ONE head exchange and return it
  /// as an in-order Batch. Single consumer. The queue flips to its spare
  /// stub, so producers keep pushing undisturbed while the consumer walks
  /// the detached chain; the previous stub travels inside the chain (pop()
  /// may have recycled it mid-stream) and the Batch skips it. The returned
  /// Batch must be fully drained before the next pop()/pop_all().
  Batch pop_all() {
    MpscNode* stub = cur_stub_.load(std::memory_order_relaxed);
    MpscNode* first = tail_.load(std::memory_order_relaxed);
    if (first == stub &&
        head_.load(std::memory_order_acquire) == stub) {
      return Batch{};  // nothing pushed (in-flight pushes show up later)
    }
    MpscNode* fresh = stub == &stubs_[0] ? &stubs_[1] : &stubs_[0];
    fresh->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* last = head_.exchange(fresh, std::memory_order_acq_rel);
    tail_.store(fresh, std::memory_order_relaxed);
    cur_stub_.store(fresh, std::memory_order_relaxed);
    return Batch{first, last, stub};
  }

  /// Hint: true when nothing is observably queued. Safe to call
  /// concurrently with producers (every member read is atomic).
  bool empty_hint() const {
    MpscNode* tail = tail_.load(std::memory_order_acquire);
    return head_.load(std::memory_order_acquire) == tail &&
           tail == cur_stub_.load(std::memory_order_acquire);
  }

 private:
  friend struct MpscQueueTestPeer;

  std::atomic<MpscNode*> head_;      // producers push here
  std::atomic<MpscNode*> tail_;      // consumer pops here
  std::atomic<MpscNode*> cur_stub_;  // which of stubs_ roots the live list
  // Two stubs so pop_all() can flip to a fresh one while the old stub is
  // still buried in the detached chain.
  MpscNode stubs_[2];
};

}  // namespace impacc
