// In-order, lock-free multi-producer single-consumer queue.
//
// The paper (section 3.7) requires "two in-order and lock-free
// multi-producer (task threads) single-consumer (message handler thread)
// queues". This is the classic Vyukov intrusive MPSC queue: producers link
// nodes with one atomic exchange; the consumer walks the list. Per-producer
// FIFO ordering is preserved, which is what MPI message-ordering semantics
// need.
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.h"

namespace impacc {

/// Base class for nodes that can be put on an MpscQueue.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

/// Intrusive MPSC queue. The queue never owns nodes.
///
/// push() is wait-free for producers. pop() is lock-free for the single
/// consumer; it may momentarily observe an in-flight push (next pointer not
/// yet linked) and return nullptr, in which case the element will be
/// visible on a later pop — consumers must treat nullptr as "possibly more
/// later", and use empty() only as a hint.
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueue a node. Callable from any thread/fiber.
  void push(MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    // A preempted producer here leaves the queue momentarily disconnected;
    // pop() handles that window by returning nullptr.
    prev->next.store(node, std::memory_order_release);
  }

  /// Dequeue one node, or nullptr if (apparently) empty. Single consumer.
  MpscNode* pop() {
    MpscNode* tail = tail_;
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or in-flight push)
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    MpscNode* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;  // producer mid-push; retry later
    // Re-insert the stub so the consumer can take the last element.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

  /// Hint: true when nothing is observably queued.
  bool empty_hint() const {
    return head_.load(std::memory_order_acquire) == tail_ &&
           tail_ == const_cast<MpscNode*>(&stub_);
  }

 private:
  std::atomic<MpscNode*> head_;  // producers push here
  MpscNode* tail_;               // consumer pops here
  MpscNode stub_;
};

}  // namespace impacc
