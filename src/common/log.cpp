#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace impacc::log {
namespace {

std::atomic<int> g_level{-1};
std::mutex g_mutex;

Level level_from_env() {
  const char* env = std::getenv("IMPACC_LOG_LEVEL");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  return Level::kWarn;
}

const char* level_tag(Level lv) {
  switch (lv) {
    case Level::kError: return "E";
    case Level::kWarn: return "W";
    case Level::kInfo: return "I";
    case Level::kDebug: return "D";
  }
  return "?";
}

}  // namespace

Level level() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(level_from_env());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<Level>(lv);
}

void set_level(Level lv) {
  g_level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

void vlogf(Level lv, const char* fmt, std::va_list ap) {
  if (static_cast<int>(lv) > static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[impacc %s] ", level_tag(lv));
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}

void logf(Level lv, const char* fmt, ...) {
  if (static_cast<int>(lv) > static_cast<int>(level())) return;
  std::va_list ap;
  va_start(ap, fmt);
  vlogf(lv, fmt, ap);
  va_end(ap);
}

}  // namespace impacc::log
