#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include <sys/time.h>

namespace impacc::log {
namespace {

std::atomic<int> g_level{-1};
std::mutex g_mutex;
std::atomic<ContextFn> g_context{nullptr};

/// Wall-clock "HH:MM:SS.mmm" into buf (cap must be >= 13).
void format_timestamp(char* buf, std::size_t cap) {
  struct timeval tv;
  if (::gettimeofday(&tv, nullptr) != 0) {
    std::snprintf(buf, cap, "--:--:--.---");
    return;
  }
  struct tm tm_buf;
  ::localtime_r(&tv.tv_sec, &tm_buf);
  std::snprintf(buf, cap, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(tv.tv_usec / 1000));
}

Level level_from_env() {
  const char* env = std::getenv("IMPACC_LOG_LEVEL");
  if (env == nullptr) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  return Level::kWarn;
}

const char* level_tag(Level lv) {
  switch (lv) {
    case Level::kError: return "E";
    case Level::kWarn: return "W";
    case Level::kInfo: return "I";
    case Level::kDebug: return "D";
  }
  return "?";
}

}  // namespace

Level level() {
  int lv = g_level.load(std::memory_order_acquire);
  if (lv < 0) {
    // Parse the environment exactly once: without the lock, two threads
    // racing through first use could interleave a concurrent set_level()
    // between their parse and store and silently undo it.
    std::lock_guard<std::mutex> lock(g_mutex);
    lv = g_level.load(std::memory_order_relaxed);
    if (lv < 0) {
      lv = static_cast<int>(level_from_env());
      g_level.store(lv, std::memory_order_release);
    }
  }
  return static_cast<Level>(lv);
}

void set_level(Level lv) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level.store(static_cast<int>(lv), std::memory_order_release);
}

void set_context_provider(ContextFn fn) {
  g_context.store(fn, std::memory_order_release);
}

void vlogf(Level lv, const char* fmt, std::va_list ap) {
  if (static_cast<int>(lv) > static_cast<int>(level())) return;
  char ts[16];
  format_timestamp(ts, sizeof(ts));
  char ctx[64];
  int ctx_len = 0;
  if (ContextFn fn = g_context.load(std::memory_order_acquire)) {
    ctx_len = fn(ctx, sizeof(ctx));
    if (ctx_len < 0) ctx_len = 0;
    if (ctx_len >= static_cast<int>(sizeof(ctx))) {
      ctx_len = static_cast<int>(sizeof(ctx)) - 1;
    }
  }
  ctx[ctx_len] = '\0';
  std::lock_guard<std::mutex> lock(g_mutex);
  if (ctx_len > 0) {
    std::fprintf(stderr, "[impacc %s %s %s] ", ts, level_tag(lv), ctx);
  } else {
    std::fprintf(stderr, "[impacc %s %s] ", ts, level_tag(lv));
  }
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}

void logf(Level lv, const char* fmt, ...) {
  if (static_cast<int>(lv) > static_cast<int>(level())) return;
  std::va_list ap;
  va_start(ap, fmt);
  vlogf(lv, fmt, ap);
  va_end(ap);
}

}  // namespace impacc::log
