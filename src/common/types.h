// Basic shared types and error handling for the IMPACC runtime.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace impacc {

/// Error codes used across the runtime. Mirrors the small set of failures
/// the paper's runtime can surface (invalid arguments, resource exhaustion,
/// protocol misuse of the directive extension).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kUnsupported,
  kFailedPrecondition,
  kInternal,
};

const char* status_code_name(StatusCode code);

/// Lightweight status object. Success is cheap (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status already_exists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status out_of_memory(std::string m) {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfMemory: return "OUT_OF_MEMORY";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

inline std::string Status::to_string() const {
  if (is_ok()) return "OK";
  return std::string(status_code_name(code_)) + ": " + message_;
}

/// Aborts with a message. Used for programming errors that must never
/// happen in a correct runtime (the HPC equivalent of Expects/Ensures).
[[noreturn]] inline void fatal(const char* file, int line, const char* what) {
  std::fprintf(stderr, "impacc fatal: %s:%d: %s\n", file, line, what);
  std::abort();
}

#define IMPACC_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) ::impacc::fatal(__FILE__, __LINE__, #cond);        \
  } while (0)

#define IMPACC_CHECK_MSG(cond, msg)                                 \
  do {                                                              \
    if (!(cond)) ::impacc::fatal(__FILE__, __LINE__, msg);          \
  } while (0)

}  // namespace impacc
