// Checksums used by tests and the benchmark harness to validate that the
// IMPACC and baseline code paths produce identical numerical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace impacc {

/// FNV-1a over raw bytes. Order-sensitive; used for exact-equality checks.
inline std::uint64_t fnv1a(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Checksum of a double array that is stable across reordering of
/// independent contributions within a tolerance: a simple Kahan sum.
inline double kahan_sum(const double* v, std::size_t n) {
  double sum = 0.0;
  double c = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = v[i] - c;
    const double t = sum + y;
    c = (t - sum) - y;
    sum = t;
  }
  return sum;
}

}  // namespace impacc
