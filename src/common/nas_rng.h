// NAS parallel benchmarks pseudo-random number generator.
//
// EP (section 4.2 of the paper, Fig. 12) is the NAS EP kernel, which is
// defined in terms of this exact linear congruential generator:
//   x_{k+1} = a * x_k  (mod 2^46),  a = 5^13, seed = 271828183.
// Reproducing EP's per-class Gaussian-pair counts requires the real
// generator, including the O(log k) "skip ahead" used to give each task an
// independent stream slice.
#pragma once

#include <cstdint>

namespace impacc::nas {

inline constexpr double kR23 = 1.0 / (1 << 23) / (1 << 0) / 8388608.0 * 8388608.0;

/// NAS LCG state and operations on 46-bit integers carried in doubles,
/// matching the reference randlc()/vranlc() implementation semantics but
/// using 64-bit integer arithmetic for exactness.
class RandLc {
 public:
  static constexpr std::uint64_t kMod = 1ull << 46;
  static constexpr std::uint64_t kA = 1220703125ull;  // 5^13
  static constexpr std::uint64_t kDefaultSeed = 271828183ull;

  explicit RandLc(std::uint64_t seed = kDefaultSeed) : x_(seed % kMod) {}

  /// Advance one step and return a uniform double in (0, 1).
  double next() {
    x_ = mulmod(kA, x_);
    return static_cast<double>(x_) * inv_mod();
  }

  /// Skip the stream ahead by `k` steps (O(log k)).
  void skip(std::uint64_t k) {
    const std::uint64_t ak = powmod(kA, k);
    x_ = mulmod(ak, x_);
  }

  std::uint64_t state() const { return x_; }

  /// a^k mod 2^46.
  static std::uint64_t powmod(std::uint64_t a, std::uint64_t k);

  /// a*b mod 2^46 (exact; uses 128-bit product).
  static std::uint64_t mulmod(std::uint64_t a, std::uint64_t b);

 private:
  static constexpr double inv_mod() {
    return 1.0 / static_cast<double>(kMod);
  }

  std::uint64_t x_;
};

}  // namespace impacc::nas
