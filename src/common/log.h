// Minimal leveled logger. Controlled by IMPACC_LOG_LEVEL (error|warn|info|debug).
#pragma once

#include <cstdarg>

namespace impacc::log {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current level; messages above it are suppressed. Read once from the
/// environment at first use.
Level level();
void set_level(Level lv);

void vlogf(Level lv, const char* fmt, std::va_list ap);
void logf(Level lv, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define IMPACC_LOG_ERROR(...) ::impacc::log::logf(::impacc::log::Level::kError, __VA_ARGS__)
#define IMPACC_LOG_WARN(...) ::impacc::log::logf(::impacc::log::Level::kWarn, __VA_ARGS__)
#define IMPACC_LOG_INFO(...) ::impacc::log::logf(::impacc::log::Level::kInfo, __VA_ARGS__)
#define IMPACC_LOG_DEBUG(...) ::impacc::log::logf(::impacc::log::Level::kDebug, __VA_ARGS__)

}  // namespace impacc::log
