// Minimal leveled logger. Controlled by IMPACC_LOG_LEVEL (error|warn|info|debug).
//
// Lines look like:
//   [impacc 14:03:07.512 W n0/t1] message...
// i.e. wall-clock timestamp, level tag, and — when a context provider is
// installed — the calling node/task (or fiber name). The runtime installs
// a provider at construction; standalone library users get no context
// field and lose nothing.
#pragma once

#include <cstdarg>
#include <cstddef>

namespace impacc::log {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current level; messages above it are suppressed. Parsed from the
/// environment exactly once (thread-safe) at first use.
Level level();
void set_level(Level lv);

/// Optional context provider: writes a short identifier (e.g. "n0/t3")
/// into `buf` and returns the number of characters written (0 = no
/// context, snprintf conventions otherwise). Must be callable from any
/// thread and must not log. Pass nullptr to uninstall.
using ContextFn = int (*)(char* buf, std::size_t cap);
void set_context_provider(ContextFn fn);

void vlogf(Level lv, const char* fmt, std::va_list ap);
void logf(Level lv, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define IMPACC_LOG_ERROR(...) ::impacc::log::logf(::impacc::log::Level::kError, __VA_ARGS__)
#define IMPACC_LOG_WARN(...) ::impacc::log::logf(::impacc::log::Level::kWarn, __VA_ARGS__)
#define IMPACC_LOG_INFO(...) ::impacc::log::logf(::impacc::log::Level::kInfo, __VA_ARGS__)
#define IMPACC_LOG_DEBUG(...) ::impacc::log::logf(::impacc::log::Level::kDebug, __VA_ARGS__)

}  // namespace impacc::log
