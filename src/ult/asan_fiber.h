// AddressSanitizer fiber-switch annotations.
//
// ASan shadow-tracks the current stack; swapcontext moves execution to a
// different stack without telling it, which corrupts the fake-stack used
// for use-after-return detection and makes stack-buffer checks fire on
// perfectly valid fiber frames. The sanitizer API fixes this: announce
// the target stack with __sanitizer_start_switch_fiber before every
// swapcontext and confirm arrival with __sanitizer_finish_switch_fiber
// right after (passing a null save slot when the departing fiber is dying
// so its fake stack is reclaimed). These wrappers compile to nothing when
// ASan is off, so the scheduler can call them unconditionally.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define IMPACC_ASAN 1
#endif
#if !defined(IMPACC_ASAN) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define IMPACC_ASAN 1
#endif
#endif
#ifndef IMPACC_ASAN
#define IMPACC_ASAN 0
#endif

#if IMPACC_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     size_t* size_old);
}  // extern "C"
#endif

namespace impacc::ult::asan {

/// Call immediately before swapcontext. `save` receives the departing
/// context's fake stack (pass nullptr when that context will never run
/// again); bottom/size describe the stack being switched to.
inline void start_switch(void** save, const void* bottom, std::size_t size) {
#if IMPACC_ASAN
  __sanitizer_start_switch_fiber(save, bottom, size);
#else
  (void)save;
  (void)bottom;
  (void)size;
#endif
}

/// Call immediately after control arrives on this context (after
/// swapcontext returns, or at the top of a fiber trampoline). `save` is
/// the value stored by the start_switch that left this context, or
/// nullptr on first entry.
inline void finish_switch(void* save) {
#if IMPACC_ASAN
  __sanitizer_finish_switch_fiber(save, nullptr, nullptr);
#else
  (void)save;
#endif
}

}  // namespace impacc::ult::asan
