// Cooperative fiber scheduler over a pool of OS worker threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ult/fiber.h"

namespace impacc::ult {

/// Schedules fibers over `num_workers` OS threads. Fibers are cooperative:
/// they run until they yield, block, or finish. Any thread (worker or
/// external) may spawn and unblock fibers.
class Scheduler {
 public:
  /// num_workers <= 0 selects a default based on hardware concurrency.
  explicit Scheduler(int num_workers = 0);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a fiber; it becomes runnable immediately.
  Fiber* spawn(std::function<void()> entry, std::string name = {},
               std::size_t stack_size = Fiber::kDefaultStackSize);

  /// Fiber currently running on this OS thread (nullptr on non-workers).
  static Fiber* current();

  /// Cooperative yield: requeue current fiber and switch to the scheduler.
  void yield();

  /// Park the current fiber. `after_switch` (optional) runs on the worker
  /// after the fiber's context has been fully saved — release a lock there
  /// to avoid a wakeup racing the switch. Returns once unblocked.
  void block(std::function<void()> after_switch = {});

  /// Make a parked fiber runnable again. Safe from any thread. Calling it
  /// for a fiber that is about to block is safe: the wakeup is latched.
  void unblock(Fiber* f);

  /// Block the calling OS thread (not a fiber!) until every spawned fiber
  /// has finished.
  void wait_all();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  std::uint64_t fibers_spawned() const { return next_id_; }
  std::uint64_t fibers_finished() const;

  /// Monotonic count of fibers made runnable (spawn/yield/unblock). The
  /// hang watchdog polls this: a deadlocked run (nothing runnable) freezes
  /// it, while waitany/test polling keeps yielding and so keeps it moving.
  std::uint64_t ready_events() const {
    return ready_events_.load(std::memory_order_relaxed);
  }

  /// Observability hook: called (outside the scheduler lock) with the
  /// run-queue depth after each fiber becomes runnable. The installer must
  /// keep the callback valid until it is reset; install before fibers run.
  void set_ready_sampler(std::function<void(std::size_t)> sampler);

 private:
  friend class Fiber;

  void worker_main(int index);
  Fiber* pop_runnable();
  void push_runnable(Fiber* f);
  void switch_to_scheduler();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Fiber*> run_queue_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::thread> workers_;
  std::uint64_t next_id_ = 0;
  std::uint64_t live_fibers_ = 0;
  std::atomic<std::uint64_t> ready_events_{0};
  bool shutdown_ = false;
  std::function<void(std::size_t)> ready_sampler_;  // guarded by mutex_
};

}  // namespace impacc::ult
