#include "ult/fiber.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

#include "common/log.h"
#include "ult/asan_fiber.h"
#include "ult/scheduler.h"
#include "ult/tsan_fiber.h"

namespace impacc::ult {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

}  // namespace

Fiber::Fiber(Scheduler* sched, std::uint64_t id, std::function<void()> entry,
             std::size_t stack_size, std::string name)
    : sched_(sched), id_(id), name_(std::move(name)), entry_(std::move(entry)) {
  const std::size_t ps = page_size();
  stack_size = (stack_size + ps - 1) / ps * ps;
  stack_total_ = stack_size + ps;  // one guard page at the low end
  // MAP_NORESERVE keeps thousands of fibers cheap: pages materialize only
  // when touched, so 8192 tasks cost real memory proportional to use.
  void* base = ::mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  IMPACC_CHECK_MSG(base != MAP_FAILED, "fiber stack mmap failed");
  IMPACC_CHECK(::mprotect(base, ps, PROT_NONE) == 0);
  stack_base_ = base;

  stack_lo_ = static_cast<char*>(base) + ps;
  stack_usable_ = stack_size;

  IMPACC_CHECK(::getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_lo_;
  context_.uc_stack.ss_size = stack_usable_;
  context_.uc_link = nullptr;  // fibers switch back explicitly, never fall off

  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));

  tsan_fiber_ = tsan::create_fiber();
}

Fiber::~Fiber() {
  tsan::destroy_fiber(tsan_fiber_);
  if (stack_base_ != nullptr) ::munmap(stack_base_, stack_total_);
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  // First time on this stack: complete the switch the worker started.
  asan::finish_switch(nullptr);
  const std::uintptr_t p =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(p)->run_entry();
  // Unreachable: run_entry never returns.
}

void Fiber::run_entry() {
  entry_();
  entry_ = nullptr;  // release captured resources while still alive
  istate_.store(detail::kSDone, std::memory_order_release);
  sched_->switch_to_scheduler();
  IMPACC_CHECK_MSG(false, "resumed a finished fiber");
}

}  // namespace impacc::ult
