#include "ult/sync.h"

#include "common/types.h"

namespace impacc::ult {

// --- FiberMutex ------------------------------------------------------------

void FiberMutex::lock() {
  Fiber* self = Scheduler::current();
  IMPACC_CHECK_MSG(self != nullptr, "FiberMutex used outside a fiber");
  spin_.lock();
  if (!locked_) {
    locked_ = true;
    spin_.unlock();
    return;
  }
  waiters_.push_back(self);
  // The spinlock is released only after this fiber's context is saved, so
  // an unlock() on another worker cannot resume us mid-switch.
  self->scheduler()->block([this] { spin_.unlock(); });
  // Ownership was handed to us by unlock(); locked_ stays true.
}

bool FiberMutex::try_lock() {
  spin_.lock();
  const bool acquired = !locked_;
  if (acquired) locked_ = true;
  spin_.unlock();
  return acquired;
}

void FiberMutex::unlock() {
  spin_.lock();
  IMPACC_CHECK_MSG(locked_, "unlock of unlocked FiberMutex");
  if (waiters_.empty()) {
    locked_ = false;
    spin_.unlock();
    return;
  }
  Fiber* next = waiters_.front();
  waiters_.pop_front();
  spin_.unlock();
  // Direct handoff: the mutex stays locked on behalf of `next`.
  next->scheduler()->unblock(next);
}

// --- FiberCondVar ----------------------------------------------------------

void FiberCondVar::wait(FiberMutex& m) {
  Fiber* self = Scheduler::current();
  IMPACC_CHECK_MSG(self != nullptr, "FiberCondVar used outside a fiber");
  spin_.lock();
  waiters_.push_back(self);
  self->scheduler()->block([this, &m] {
    spin_.unlock();
    m.unlock();
  });
  m.lock();
}

void FiberCondVar::notify_one() {
  spin_.lock();
  if (waiters_.empty()) {
    spin_.unlock();
    return;
  }
  Fiber* f = waiters_.front();
  waiters_.pop_front();
  spin_.unlock();
  f->scheduler()->unblock(f);
}

void FiberCondVar::notify_all() {
  spin_.lock();
  std::deque<Fiber*> woken;
  woken.swap(waiters_);
  spin_.unlock();
  for (Fiber* f : woken) f->scheduler()->unblock(f);
}

// --- FiberBarrier ----------------------------------------------------------

bool FiberBarrier::arrive_and_wait() {
  FiberLock lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(mutex_, [this, gen] { return generation_ != gen; });
  return false;
}

// --- FiberLatch ------------------------------------------------------------

void FiberLatch::count_down(int n) {
  FiberLock lock(mutex_);
  IMPACC_CHECK(count_ >= n);
  count_ -= n;
  if (count_ == 0) cv_.notify_all();
}

void FiberLatch::wait() {
  FiberLock lock(mutex_);
  cv_.wait(mutex_, [this] { return count_ == 0; });
}

// --- FiberEvent ------------------------------------------------------------

void FiberEvent::wait_and_reset() {
  Fiber* self = Scheduler::current();
  IMPACC_CHECK_MSG(self != nullptr, "FiberEvent used outside a fiber");
  spin_.lock();
  if (set_) {
    set_ = false;
    spin_.unlock();
    return;
  }
  waiters_.push_back(self);
  self->scheduler()->block([this] { spin_.unlock(); });
  // set() consumed the flag on our behalf before waking us.
}

void FiberEvent::set() {
  spin_.lock();
  if (waiters_.empty()) {
    set_ = true;
    spin_.unlock();
    return;
  }
  Fiber* f = waiters_.front();
  waiters_.pop_front();
  spin_.unlock();
  f->scheduler()->unblock(f);
}

}  // namespace impacc::ult
