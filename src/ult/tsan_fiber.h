// ThreadSanitizer fiber-switch annotations.
//
// TSan maintains per-thread shadow state (clocks, stack traces); a
// swapcontext moves execution between stacks without telling it, so
// every fiber hop would look like impossible same-thread races. The
// fiber API fixes this: give each fiber its own shadow context with
// __tsan_create_fiber, and announce every hop with
// __tsan_switch_to_fiber immediately before the swapcontext (flags = 0
// makes the switch itself a synchronization point, matching the
// scheduler's real handoff ordering). Mirrors asan_fiber.h: the
// wrappers compile to nothing when TSan is off, so the scheduler calls
// them unconditionally.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define IMPACC_TSAN 1
#endif
#if !defined(IMPACC_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IMPACC_TSAN 1
#endif
#endif
#ifndef IMPACC_TSAN
#define IMPACC_TSAN 0
#endif

#if IMPACC_TSAN
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}  // extern "C"
#endif

namespace impacc::ult::tsan {

/// Allocate a shadow context for a new fiber. Returns nullptr when TSan
/// is off.
inline void* create_fiber() {
#if IMPACC_TSAN
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

/// Release a fiber's shadow context. Must not be the running fiber.
inline void destroy_fiber(void* fiber) {
#if IMPACC_TSAN
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

/// Shadow context of the calling thread/fiber (so a worker can name
/// itself as a switch target later). Returns nullptr when TSan is off.
inline void* current_fiber() {
#if IMPACC_TSAN
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

/// Call immediately before the swapcontext that enters `fiber`.
inline void switch_to(void* fiber) {
#if IMPACC_TSAN
  if (fiber != nullptr) __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

}  // namespace impacc::ult::tsan
