#include "ult/scheduler.h"

#include <algorithm>

#include "common/log.h"
#include "common/types.h"
#include "ult/asan_fiber.h"
#include "ult/tsan_fiber.h"

#if IMPACC_ASAN
#include <pthread.h>
#endif

namespace impacc::ult {

using namespace detail;

FiberState Fiber::state() const {
  switch (istate_.load(std::memory_order_acquire)) {
    case kSReady:
    case kSWakePending:
      return FiberState::kReady;
    case kSRunning:
      return FiberState::kRunning;
    case kSBlocking:
    case kSBlocked:
      return FiberState::kBlocked;
    default:
      return FiberState::kDone;
  }
}

namespace {
thread_local Fiber* tls_current = nullptr;
thread_local ucontext_t tls_worker_context;
// The worker thread's own TSan shadow context, so a fiber switching back
// to the scheduler can name it as the target. nullptr when TSan is off.
thread_local void* tls_worker_tsan_fiber = nullptr;

#if IMPACC_ASAN
// ASan bookkeeping for the worker side of each switch: the worker's own
// fake-stack save slot and its pthread stack bounds (fibers announce
// these when they switch back to the scheduler).
thread_local void* tls_worker_fake_stack = nullptr;
thread_local const void* tls_worker_stack_lo = nullptr;
thread_local std::size_t tls_worker_stack_size = 0;

void init_worker_stack_bounds() {
  pthread_attr_t attr;
  IMPACC_CHECK(pthread_getattr_np(pthread_self(), &attr) == 0);
  void* lo = nullptr;
  std::size_t size = 0;
  IMPACC_CHECK(pthread_attr_getstack(&attr, &lo, &size) == 0);
  pthread_attr_destroy(&attr);
  tls_worker_stack_lo = lo;
  tls_worker_stack_size = size;
}
#endif
}  // namespace

// --- Scheduler ------------------------------------------------------------

Scheduler::Scheduler(int num_workers) {
  if (num_workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_workers = static_cast<int>(std::clamp(hw, 1u, 4u));
  }
  workers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  wait_all();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

Fiber* Scheduler::spawn(std::function<void()> entry, std::string name,
                        std::size_t stack_size) {
  std::unique_ptr<Fiber> fiber;
  Fiber* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fiber = std::make_unique<Fiber>(this, next_id_++, std::move(entry),
                                    stack_size, std::move(name));
    raw = fiber.get();
    fibers_.push_back(std::move(fiber));
    ++live_fibers_;
    run_queue_.push_back(raw);
  }
  ready_events_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  return raw;
}

Fiber* Scheduler::current() { return tls_current; }

void Scheduler::yield() {
  Fiber* f = tls_current;
  IMPACC_CHECK_MSG(f != nullptr, "yield() outside a fiber");
  // Requeue only after the context is saved, so no worker resumes a
  // half-switched fiber.
  f->post_switch_ = [this, f] {
    f->istate_.store(kSReady, std::memory_order_release);
    push_runnable(f);
  };
  switch_to_scheduler();
}

void Scheduler::block(std::function<void()> after_switch) {
  Fiber* f = tls_current;
  IMPACC_CHECK_MSG(f != nullptr, "block() outside a fiber");
  f->istate_.store(kSBlocking, std::memory_order_release);
  f->post_switch_ = [this, f, action = std::move(after_switch)] {
    if (action) action();
    int expected = kSBlocking;
    if (!f->istate_.compare_exchange_strong(expected, kSBlocked,
                                            std::memory_order_acq_rel)) {
      // A wakeup raced the park; it was latched as kSWakePending.
      IMPACC_CHECK(expected == kSWakePending);
      f->istate_.store(kSReady, std::memory_order_release);
      push_runnable(f);
    }
  };
  switch_to_scheduler();
}

void Scheduler::unblock(Fiber* f) {
  for (;;) {
    int s = f->istate_.load(std::memory_order_acquire);
    if (s == kSBlocked) {
      if (f->istate_.compare_exchange_weak(s, kSReady,
                                           std::memory_order_acq_rel)) {
        push_runnable(f);
        return;
      }
    } else if (s == kSBlocking) {
      if (f->istate_.compare_exchange_weak(s, kSWakePending,
                                           std::memory_order_acq_rel)) {
        return;  // the parking worker will requeue
      }
    } else {
      // Already runnable/running/done: wakeup is a no-op. Our sync
      // primitives only unblock fibers they found on a wait list, so this
      // indicates a (tolerated) duplicate wakeup.
      return;
    }
  }
}

void Scheduler::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return live_fibers_ == 0; });
}

std::uint64_t Scheduler::fibers_finished() const {
  auto* self = const_cast<Scheduler*>(this);
  std::lock_guard<std::mutex> lock(self->mutex_);
  return next_id_ - live_fibers_;
}

void Scheduler::set_ready_sampler(std::function<void(std::size_t)> sampler) {
  std::lock_guard<std::mutex> lock(mutex_);
  ready_sampler_ = std::move(sampler);
}

void Scheduler::push_runnable(Fiber* f) {
  const std::function<void(std::size_t)>* sampler = nullptr;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    run_queue_.push_back(f);
    if (ready_sampler_) {
      sampler = &ready_sampler_;
      depth = run_queue_.size();
    }
  }
  ready_events_.fetch_add(1, std::memory_order_relaxed);
  work_cv_.notify_one();
  // Invoked outside the lock: the callback may itself take locks (the
  // metrics registry / trace sink). set_ready_sampler() is restricted to
  // before/after the run, so the pointer stays valid here.
  if (sampler != nullptr) (*sampler)(depth);
}

Fiber* Scheduler::pop_runnable() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_cv_.wait(lock, [this] { return shutdown_ || !run_queue_.empty(); });
  if (shutdown_ && run_queue_.empty()) return nullptr;
  Fiber* f = run_queue_.front();
  run_queue_.pop_front();
  return f;
}

void Scheduler::switch_to_scheduler() {
  Fiber* f = tls_current;
#if IMPACC_ASAN
  // A finished fiber never runs again: hand ASan a null save slot so its
  // fake stack is destroyed instead of leaked.
  const bool dying =
      f->istate_.load(std::memory_order_acquire) == detail::kSDone;
  asan::start_switch(dying ? nullptr : &f->asan_fake_stack_,
                     tls_worker_stack_lo, tls_worker_stack_size);
#endif
  tsan::switch_to(tls_worker_tsan_fiber);
  ::swapcontext(&f->context_, &tls_worker_context);
  // Back on this fiber after a later resume.
  asan::finish_switch(f->asan_fake_stack_);
}

void Scheduler::worker_main(int /*index*/) {
#if IMPACC_ASAN
  init_worker_stack_bounds();
#endif
  tls_worker_tsan_fiber = tsan::current_fiber();
  for (;;) {
    Fiber* f = pop_runnable();
    if (f == nullptr) return;  // shutdown
    f->istate_.store(kSRunning, std::memory_order_release);
    tls_current = f;
#if IMPACC_ASAN
    asan::start_switch(&tls_worker_fake_stack, f->stack_lo_,
                       f->stack_usable_);
#endif
    tsan::switch_to(f->tsan_fiber_);
    ::swapcontext(&tls_worker_context, &f->context_);
#if IMPACC_ASAN
    asan::finish_switch(tls_worker_fake_stack);
#endif
    tls_current = nullptr;
    // Decide "finished" BEFORE running the post-switch action: a finished
    // fiber never has one, and once the action runs (requeue/unpark) the
    // fiber may be resumed — and even finish — on another worker, whose
    // loop then owns the done accounting. Reading state() afterwards
    // would double-count such fibers.
    const bool finished =
        !f->post_switch_ && f->state() == FiberState::kDone;
    if (f->post_switch_) {
      auto action = std::move(f->post_switch_);
      f->post_switch_ = nullptr;
      action();
    }
    if (finished) {
      bool all_done = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --live_fibers_;
        all_done = (live_fibers_ == 0);
      }
      if (all_done) done_cv_.notify_all();
    }
  }
}

}  // namespace impacc::ult
