// User-level threads (fibers) built on ucontext.
//
// The paper implements each MPI task as a "lightweight user-level thread"
// so that all tasks of a node share one virtual address space (section 2.3).
// This module provides those threads: cooperatively scheduled fibers with
// guarded, lazily-allocated stacks, cheap context switches, and a blocking
// protocol the synchronization primitives in ult/sync.h build on.
#pragma once

#include <ucontext.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "common/types.h"

namespace impacc::ult {

class Scheduler;

enum class FiberState : int {
  kReady,    // runnable, waiting for a worker
  kRunning,  // currently on a worker
  kBlocked,  // parked; needs unblock()
  kDone,     // entry function returned
};

namespace detail {
// Internal fine-grained states for the park/unpark protocol. kSBlocking
// covers the window between a fiber deciding to block and its context being
// fully saved; a wakeup arriving in that window is latched as kSWakePending
// instead of being lost.
enum : int {
  kSReady = 0,
  kSRunning = 1,
  kSBlocking = 2,
  kSBlocked = 3,
  kSDone = 4,
  kSWakePending = 5,
};
}  // namespace detail

/// A single user-level thread. Created and owned by a Scheduler.
class Fiber {
 public:
  static constexpr std::size_t kDefaultStackSize = 128 * 1024;

  Fiber(Scheduler* sched, std::uint64_t id, std::function<void()> entry,
        std::size_t stack_size, std::string name);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  FiberState state() const;
  Scheduler* scheduler() const { return sched_; }

  /// Pointer the runtime can hang per-task context off. The scheduler does
  /// not interpret it.
  void set_user_data(void* p) { user_data_ = p; }
  void* user_data() const { return user_data_; }

 private:
  friend class Scheduler;

  static void trampoline(unsigned hi, unsigned lo);
  void run_entry();

  Scheduler* sched_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> entry_;

  void* stack_base_ = nullptr;  // mmap'd region including guard page
  std::size_t stack_total_ = 0;
  void* stack_lo_ = nullptr;        // usable stack bottom (above the guard)
  std::size_t stack_usable_ = 0;    // usable stack size
  void* asan_fake_stack_ = nullptr;  // ASan fake-stack save slot
  void* tsan_fiber_ = nullptr;       // TSan shadow context handle
  ucontext_t context_{};

  // Fine-grained state for the park/unpark protocol; see scheduler.cpp for
  // the internal encoding (it extends FiberState with transient values).
  std::atomic<int> istate_{0};
  // Action to run on the worker after this fiber has been switched out;
  // used to atomically "park then release lock" without lost wakeups.
  std::function<void()> post_switch_;
  void* user_data_ = nullptr;
};

}  // namespace impacc::ult
