// Synchronization primitives for fibers.
//
// These mirror the std:: primitives but park *fibers* instead of OS
// threads, so a blocked MPI task costs one queue entry, not a kernel wait.
// All primitives are usable from fibers on any worker; a short internal
// spinlock protects the wait lists (never held across a fiber switch —
// block() releases it in the post-switch action).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "ult/scheduler.h"

namespace impacc::ult {

/// Tiny test-and-set spinlock for wait-list protection.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Contention is cross-worker only and the critical sections are a
      // handful of instructions; spinning is appropriate.
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Mutual exclusion between fibers. Ownership is passed directly to the
/// first waiter on unlock (no thundering herd, FIFO fair).
class FiberMutex {
 public:
  void lock();
  bool try_lock();
  void unlock();

 private:
  SpinLock spin_;
  bool locked_ = false;
  std::deque<Fiber*> waiters_;
};

/// RAII lock guard for FiberMutex.
class FiberLock {
 public:
  explicit FiberLock(FiberMutex& m) : m_(m) { m_.lock(); }
  ~FiberLock() { m_.unlock(); }
  FiberLock(const FiberLock&) = delete;
  FiberLock& operator=(const FiberLock&) = delete;

 private:
  FiberMutex& m_;
};

/// Condition variable for fibers; used with FiberMutex.
class FiberCondVar {
 public:
  void wait(FiberMutex& m);

  template <typename Pred>
  void wait(FiberMutex& m, Pred pred) {
    while (!pred()) wait(m);
  }

  void notify_one();
  void notify_all();

 private:
  SpinLock spin_;
  std::deque<Fiber*> waiters_;
};

/// Cyclic barrier for a fixed set of fibers (MPI_Barrier within a node and,
/// with the network model, across nodes builds on this).
class FiberBarrier {
 public:
  explicit FiberBarrier(int parties) : parties_(parties) {}

  /// Returns true for exactly one fiber per generation (the last arriver).
  bool arrive_and_wait();

 private:
  FiberMutex mutex_;
  FiberCondVar cv_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
};

/// One-shot countdown latch.
class FiberLatch {
 public:
  explicit FiberLatch(int count) : count_(count) {}

  void count_down(int n = 1);
  void wait();

 private:
  FiberMutex mutex_;
  FiberCondVar cv_;
  int count_;
};

/// Binary event: wait() parks until set() is called. Used to idle the
/// per-node message handler fiber when its queues are empty.
class FiberEvent {
 public:
  /// Park until the event is set, then atomically consume it.
  void wait_and_reset();

  /// Set the event, waking one waiter if present. Safe from any fiber or
  /// OS thread.
  void set();

 private:
  SpinLock spin_;
  bool set_ = false;
  std::deque<Fiber*> waiters_;
};

}  // namespace impacc::ult
