#include "core/pinned_pool.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "common/types.h"

namespace impacc::core {

PinnedPool::~PinnedPool() {
  if (!functional_) return;
  for (auto& [bytes, ptr] : free_) std::free(ptr);
  // Buffers still acquired at teardown belong to in-flight transfers of a
  // runtime that is being destroyed anyway; the OS reclaims them.
}

PinnedPool::Buffer PinnedPool::acquire(std::uint64_t bytes) {
  const std::lock_guard<ult::SpinLock> guard(lock_);
  ++stats_.acquires;
  const auto mark_in_use = [this](std::uint64_t b) {
    stats_.bytes_in_use += b;
    stats_.bytes_in_use_peak =
        std::max(stats_.bytes_in_use_peak, stats_.bytes_in_use);
  };
  auto it = free_.lower_bound(bytes);
  if (it != free_.end()) {
    if (it->first <= 2 * bytes) {
      ++stats_.hits;
      Buffer b{it->second, it->first};
      stats_.bytes_retained -= it->first;
      free_.erase(it);
      mark_in_use(b.bytes);
      return b;
    }
    // Best fit is still wildly oversized; handing it out would waste
    // pinned memory for the whole transfer. Pin an exact one instead.
    ++stats_.oversize_rejects;
  }
  ++stats_.buffers_created;
  stats_.bytes_allocated += bytes;
  Buffer b;
  b.bytes = bytes;
  if (functional_) {
    b.ptr = std::malloc(bytes);
    IMPACC_CHECK_MSG(b.ptr != nullptr, "pinned pool allocation failed");
  } else {
    b.ptr = reinterpret_cast<void*>(next_fake_++);
  }
  mark_in_use(b.bytes);
  return b;
}

void PinnedPool::release(Buffer buffer) {
  if (buffer.ptr == nullptr) return;
  const std::lock_guard<ult::SpinLock> guard(lock_);
  stats_.bytes_in_use -= buffer.bytes;
  free_.emplace(buffer.bytes, buffer.ptr);
  stats_.bytes_retained += buffer.bytes;
  trim_locked();
}

void PinnedPool::set_retain_limit(std::uint64_t bytes) {
  const std::lock_guard<ult::SpinLock> guard(lock_);
  retain_limit_ = bytes;
  trim_locked();
}

void PinnedPool::trim_locked() {
  // Largest-first: one eviction frees the most retained bytes, and the
  // biggest buffers are the least likely to be re-requested exactly.
  while (stats_.bytes_retained > retain_limit_ && !free_.empty()) {
    const auto largest = std::prev(free_.end());
    stats_.bytes_retained -= largest->first;
    stats_.bytes_trimmed += largest->first;
    ++stats_.trims;
    if (functional_) std::free(largest->second);
    free_.erase(largest);
  }
}

PinnedPool::Stats PinnedPool::stats() const {
  const std::lock_guard<ult::SpinLock> guard(lock_);
  return stats_;
}

}  // namespace impacc::core
