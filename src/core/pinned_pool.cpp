#include "core/pinned_pool.h"

#include <cstdlib>

#include "common/types.h"

namespace impacc::core {

PinnedPool::~PinnedPool() {
  if (!functional_) return;
  for (auto& [bytes, ptr] : free_) std::free(ptr);
  // Buffers still acquired at teardown belong to in-flight transfers of a
  // runtime that is being destroyed anyway; the OS reclaims them.
}

PinnedPool::Buffer PinnedPool::acquire(std::uint64_t bytes) {
  lock_.lock();
  ++stats_.acquires;
  auto it = free_.lower_bound(bytes);
  if (it != free_.end()) {
    ++stats_.hits;
    Buffer b{it->second, it->first};
    free_.erase(it);
    lock_.unlock();
    return b;
  }
  ++stats_.buffers_created;
  stats_.bytes_allocated += bytes;
  Buffer b;
  b.bytes = bytes;
  if (functional_) {
    b.ptr = std::malloc(bytes);
    IMPACC_CHECK_MSG(b.ptr != nullptr, "pinned pool allocation failed");
  } else {
    b.ptr = reinterpret_cast<void*>(next_fake_++);
  }
  lock_.unlock();
  return b;
}

void PinnedPool::release(Buffer buffer) {
  if (buffer.ptr == nullptr) return;
  lock_.lock();
  free_.emplace(buffer.bytes, buffer.ptr);
  lock_.unlock();
}

PinnedPool::Stats PinnedPool::stats() const {
  lock_.lock();
  const Stats s = stats_;
  lock_.unlock();
  return s;
}

}  // namespace impacc::core
