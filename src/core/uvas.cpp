#include "core/uvas.h"

#include "core/heap.h"

namespace impacc::core {

Uvas::Location Uvas::locate(const void* p) const {
  for (dev::Device* d : devices_) {
    if (d->owns(p)) return {Kind::kDevice, d};
  }
  if (heap_ != nullptr && heap_->contains(p)) return {Kind::kHeap, nullptr};
  return {Kind::kHost, nullptr};
}

}  // namespace impacc::core
