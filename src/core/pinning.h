// NUMA-friendly task-CPU pinning (section 3.3).
//
// The real runtime reads each accelerator's CPU affinity from Linux sysfs
// (/sys/class/pci_bus) and pins the task thread to the near socket. Here
// the "sysfs" is generated from the topology description, and the pinning
// decision feeds the transfer cost models (near vs far PCIe paths).
#pragma once

#include <string>
#include <vector>

#include "sim/topology.h"

namespace impacc::core {

/// Simulated /sys/class/pci_bus content: one line per device,
/// "<pci-bus> cpulistaffinity <socket>". Tests parse it back.
std::vector<std::string> sysfs_pci_affinity(const sim::NodeDesc& node);

/// Socket the runtime pins a task to.
///  - numa_friendly: the device's own socket (parsed from the sysfs table).
///  - otherwise: unpinned; the OS lands tasks round-robin across sockets,
///    which strands half of them far from their device on a 2-socket node.
int choose_socket(const sim::NodeDesc& node, const sim::DeviceDesc& dev,
                  bool numa_friendly, int task_local_index);

/// Whether a task pinned on `socket` is near `dev`.
bool socket_is_near(const sim::NodeDesc& node, const sim::DeviceDesc& dev,
                    int socket);

/// Socket for the node's message-handler thread (the CPUMap idea from the
/// exemplar runtime): pin it next to the node's devices — the socket
/// hosting the most accelerators, lowest index on a tie — so staging
/// copies and queue polling stay on the near memory controller.
int choose_handler_socket(const sim::NodeDesc& node);

}  // namespace impacc::core
