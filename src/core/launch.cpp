#include "core/launch.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/log.h"
#include "core/runtime.h"

namespace impacc {

namespace {

/// Fold the finished runtime into a LaunchResult (stats, trace, metrics,
/// quiescence). Runs once, on the final — non-aborted — run.
LaunchResult collect_result(core::Runtime& rt) {
  LaunchResult result;
  result.trace = rt.shared_trace();
  result.num_tasks = rt.num_tasks();
  result.task_times.reserve(static_cast<std::size_t>(rt.num_tasks()));
  result.task_stats.reserve(static_cast<std::size_t>(rt.num_tasks()));
  for (int i = 0; i < rt.num_tasks(); ++i) {
    core::Task& t = rt.task(i);
    // Fold the present-table memo effectiveness into the task's stats.
    const acc::PresentTable::CacheStats& cs = t.present.cache_stats();
    t.stats.present_cache_hits = cs.hits();
    t.stats.present_cache_misses = cs.misses();
    result.task_times.push_back(t.clock.now());
    result.task_stats.push_back(t.stats);
    result.total += t.stats;
    result.makespan = std::max(result.makespan, t.clock.now());
  }
  // Stray-message quiescence verifier (DESIGN.md section 12): after a
  // clean (or cleanly recovered) run nothing may remain queued or
  // half-matched. Tests assert stray_messages == 0 at teardown.
  result.stray_messages = rt.stray_messages(&result.stray_report);
  if (result.stray_messages != 0) {
    IMPACC_LOG_WARN("quiescence check failed: %zu stray message(s)\n%s",
                    result.stray_messages, result.stray_report.c_str());
  }
  if (core::FtState* ft = rt.ft()) result.ft = ft->counters;
  // Terminal counter samples and the critical-path overlay land in the
  // trace during publish, so the file is written only afterwards.
  if (result.trace != nullptr) result.trace->finalize_counters(result.makespan);
  rt.publish_run_metrics(result.total, result.makespan, &result.metrics);
  if (result.trace != nullptr && !rt.options().trace_path.empty() &&
      rt.options().trace_path != "-") {
    if (!result.trace->write_file(rt.options().trace_path)) {
      IMPACC_LOG_WARN("could not write trace to %s",
                      rt.options().trace_path.c_str());
    }
  }
  return result;
}

/// Resolve the effective fault plan: LaunchOptions::faults merged with
/// the IMPACC_FAULT environment variable, seeds materialized against the
/// cluster size. Empty plan = the fault-tolerance machinery stays
/// entirely out of the run.
sim::FaultPlan resolve_fault_plan(const core::LaunchOptions& options) {
  sim::FaultPlan plan = options.faults;
  if (const char* env = std::getenv("IMPACC_FAULT")) {
    sim::parse_fault_plan(env, &plan);
  }
  if (!plan.empty()) {
    sim::materialize_seeds(&plan, options.cluster.num_nodes());
  }
  return plan;
}

}  // namespace

LaunchResult launch(const core::LaunchOptions& options,
                    const std::function<void()>& task_main) {
  sim::FaultPlan plan = resolve_fault_plan(options);
  if (plan.empty()) {
    // Fast path, bit-for-bit the pre-FT behaviour: no FtState, no
    // retention, every wait parks.
    core::Runtime rt(options);
    rt.run(task_main);
    return collect_result(rt);
  }

  core::FtState ft(std::move(plan));
  for (;;) {
    // Each attempt gets a fresh Runtime against fresh (possibly shrunk)
    // topology; the FtState carries checkpoints, the retention log, and
    // exclusions across attempts. The loop terminates because every
    // attempt either finishes clean or consumes one of the finitely many
    // fault events.
    core::Runtime rt(options, &ft);
    rt.run(task_main);
    if (!ft.fired()) return collect_result(rt);
    const sim::FaultEvent ev = ft.fired_event();
    IMPACC_LOG_WARN("recovering from %s: restoring epoch %d on %d node(s)",
                    sim::describe(ev).c_str(), ft.committed_epoch(),
                    options.cluster.num_nodes() - ft.num_excluded_nodes() -
                        (ev.device < 0 ? 1 : 0));
    ft.begin_recovery();
  }
}

}  // namespace impacc
