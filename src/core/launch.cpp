#include "core/launch.h"

#include <algorithm>

#include "common/log.h"
#include "core/runtime.h"

namespace impacc {

LaunchResult launch(const core::LaunchOptions& options,
                    const std::function<void()>& task_main) {
  core::Runtime rt(options);
  rt.run(task_main);

  LaunchResult result;
  result.trace = rt.shared_trace();
  result.num_tasks = rt.num_tasks();
  result.task_times.reserve(static_cast<std::size_t>(rt.num_tasks()));
  result.task_stats.reserve(static_cast<std::size_t>(rt.num_tasks()));
  for (int i = 0; i < rt.num_tasks(); ++i) {
    core::Task& t = rt.task(i);
    // Fold the present-table memo effectiveness into the task's stats.
    const acc::PresentTable::CacheStats& cs = t.present.cache_stats();
    t.stats.present_cache_hits = cs.hits();
    t.stats.present_cache_misses = cs.misses();
    result.task_times.push_back(t.clock.now());
    result.task_stats.push_back(t.stats);
    result.total += t.stats;
    result.makespan = std::max(result.makespan, t.clock.now());
  }
  // Terminal counter samples and the critical-path overlay land in the
  // trace during publish, so the file is written only afterwards.
  if (result.trace != nullptr) result.trace->finalize_counters(result.makespan);
  rt.publish_run_metrics(result.total, result.makespan, &result.metrics);
  if (result.trace != nullptr && !rt.options().trace_path.empty() &&
      rt.options().trace_path != "-") {
    if (!result.trace->write_file(rt.options().trace_path)) {
      IMPACC_LOG_WARN("could not write trace to %s",
                      rt.options().trace_path.c_str());
    }
  }
  return result;
}

}  // namespace impacc
