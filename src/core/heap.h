// Node heap and the heap table behind node heap aliasing (section 3.8).
//
// IMPACC hooks the heap routines of every task on a node into one node
// heap, recording each allocation in a reference-counted heap table
// (Fig. 7). When a matched intra-node send/recv pair meets the five
// aliasing requirements, the receiver's pointer variable is re-aimed into
// the sender's block, the original receive block is released, and the
// sender's block gains a reference — a zero-copy transfer that keeps MPI
// semantics because both sides declared the data read-only.
#pragma once

#include <cstdint>
#include <map>

#include "dev/memarena.h"
#include "ult/sync.h"

namespace impacc::core {

class NodeHeap {
 public:
  struct Block {
    std::uintptr_t addr = 0;
    std::uint64_t size = 0;
    int refcount = 0;
  };

  NodeHeap(std::uint64_t capacity, bool functional);

  /// Hooked malloc: allocate and record a block with refcount 1.
  void* alloc(std::uint64_t size);

  /// Hooked free: find the block *containing* `p` (after aliasing, the
  /// app's pointer points into another task's block), drop a reference,
  /// release the block at zero.
  void free(void* p);

  /// Block containing `p`, or nullptr.
  const Block* find_block(const void* p) const;

  /// Attempt node heap aliasing for a matched pair (handler-side; the
  /// same-node / readonly / pointer-variable conditions were already
  /// checked by the caller). Verifies the remaining requirements:
  ///   - both buffers live in this heap,
  ///   - the receive buffer is a whole block of exactly `bytes`
  ///     (the receive "fully overwrites" it).
  /// On success: re-aims *recv_ptr_addr at the send data, releases the
  /// receive block, and bumps the send block's reference.
  bool alias(void** recv_ptr_addr, void* recv_buf, std::uint64_t bytes,
             const void* send_buf);

  std::size_t block_count() const;
  std::uint64_t bytes_in_use() const;
  bool contains(const void* p) const { return arena_.contains(p); }

  /// Reference count of the block containing `p` (0 if none) — for tests.
  int refcount_of(const void* p) const;

 private:
  // Callers hold lock_.
  std::map<std::uintptr_t, Block>::iterator find_iter(const void* p);
  void release_locked(std::map<std::uintptr_t, Block>::iterator it);

  dev::MemArena arena_;
  mutable ult::SpinLock lock_;
  std::map<std::uintptr_t, Block> table_;  // by block start address
};

}  // namespace impacc::core

namespace impacc {

/// Hooked heap routines for applications: allocate from the calling
/// task's node heap so the allocation is visible to the heap table (and
/// thus eligible for node heap aliasing). Outside a task they fall back
/// to the global heap.
void* node_malloc(std::uint64_t size);
void node_free(void* p);

}  // namespace impacc
