// The IMPACC directive extension: #pragma acc mpi (section 3.5).
//
// Syntax in the paper:
//   #pragma acc mpi clause-list
//     clause := sendbuf([device][,readonly])
//             | recvbuf([device][,readonly])
//             | async [(int-expr)]
//
// The IMPACC compiler lowers the pragma to a runtime hint attached to the
// current task and consumed by the immediately following MPI call. This
// header is that lowered form; src/trans generates calls to acc::mpi()
// from the pragma text, and applications may also call it directly.
#pragma once

namespace impacc::core {

constexpr int kNoAsync = -2;  // hint has no async clause

/// Lowered #pragma acc mpi. Designated initializers give call sites
/// pragma-like readability:
///   acc::mpi({.send_device = true, .async = 1});
///   MPI_Isend(...);
struct MpiHint {
  bool send_device = false;    // sendbuf(device)
  bool send_readonly = false;  // sendbuf(readonly)
  bool recv_device = false;    // recvbuf(device)
  bool recv_readonly = false;  // recvbuf(readonly)
  // recvbuf(readonly) aliasing needs the *address of the pointer variable*
  // holding the receive buffer (the compiler knows it; library users pass
  // it explicitly). Requirement 4 of section 3.8.
  void** recv_ptr_addr = nullptr;
  int async = kNoAsync;  // async(n): enqueue the MPI op on activity queue n

  bool any() const {
    return send_device || send_readonly || recv_device || recv_readonly ||
           recv_ptr_addr != nullptr || async != kNoAsync;
  }
};

/// Attach a hint to the current task; the next MPI call consumes it.
void set_mpi_hint(const MpiHint& hint);

}  // namespace impacc::core
