#include "core/heap.h"

#include <cstdlib>

#include "common/log.h"
#include "core/runtime.h"
#include "core/task.h"

namespace impacc::core {

NodeHeap::NodeHeap(std::uint64_t capacity, bool functional)
    : arena_(capacity,
             functional ? dev::ArenaMode::kReal : dev::ArenaMode::kVirtual) {}

void* NodeHeap::alloc(std::uint64_t size) {
  void* p = arena_.alloc(size);
  IMPACC_CHECK_MSG(p != nullptr, "node heap exhausted");
  lock_.lock();
  table_.emplace(reinterpret_cast<std::uintptr_t>(p),
                 Block{reinterpret_cast<std::uintptr_t>(p), size, 1});
  lock_.unlock();
  return p;
}

std::map<std::uintptr_t, NodeHeap::Block>::iterator NodeHeap::find_iter(
    const void* p) {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  auto it = table_.upper_bound(a);
  if (it == table_.begin()) return table_.end();
  --it;
  if (a < it->second.addr + it->second.size) return it;
  return table_.end();
}

void NodeHeap::release_locked(std::map<std::uintptr_t, Block>::iterator it) {
  if (--it->second.refcount > 0) return;
  arena_.free(reinterpret_cast<void*>(it->second.addr));
  table_.erase(it);
}

void NodeHeap::free(void* p) {
  if (p == nullptr) return;
  lock_.lock();
  auto it = find_iter(p);
  IMPACC_CHECK_MSG(it != table_.end(), "node_free of unknown pointer");
  release_locked(it);
  lock_.unlock();
}

const NodeHeap::Block* NodeHeap::find_block(const void* p) const {
  auto* self = const_cast<NodeHeap*>(this);
  self->lock_.lock();
  auto it = self->find_iter(p);
  const Block* b = it == self->table_.end() ? nullptr : &it->second;
  self->lock_.unlock();
  return b;
}

bool NodeHeap::alias(void** recv_ptr_addr, void* recv_buf, std::uint64_t bytes,
                     const void* send_buf) {
  if (recv_ptr_addr == nullptr) return false;
  lock_.lock();
  auto recv_it = find_iter(recv_buf);
  auto send_it = find_iter(send_buf);
  // Requirement 2: both buffers in the host heap. Requirement 5: the recv
  // buffer is fully overwritten — it must be a whole block of exactly the
  // message size.
  if (recv_it == table_.end() || send_it == table_.end() ||
      recv_it == send_it ||
      recv_it->second.addr != reinterpret_cast<std::uintptr_t>(recv_buf) ||
      recv_it->second.size != bytes) {
    lock_.unlock();
    return false;
  }
  // Alias the receiver's pointer into the sender's block (src + off in
  // Fig. 7), release the original receive block, add a reference to the
  // sender's block.
  *recv_ptr_addr = const_cast<void*>(send_buf);
  ++send_it->second.refcount;
  release_locked(recv_it);
  lock_.unlock();
  return true;
}

std::size_t NodeHeap::block_count() const {
  auto* self = const_cast<NodeHeap*>(this);
  self->lock_.lock();
  const std::size_t n = self->table_.size();
  self->lock_.unlock();
  return n;
}

std::uint64_t NodeHeap::bytes_in_use() const { return arena_.bytes_in_use(); }

int NodeHeap::refcount_of(const void* p) const {
  const Block* b = find_block(p);
  return b == nullptr ? 0 : b->refcount;
}

}  // namespace impacc::core

namespace impacc {

void* node_malloc(std::uint64_t size) {
  core::Task* t = core::current_task();
  if (t == nullptr) return std::malloc(size);
  return t->node->heap.alloc(size);
}

void node_free(void* p) {
  core::Task* t = core::current_task();
  if (t == nullptr) {
    std::free(p);
    return;
  }
  t->node->heap.free(p);
}

}  // namespace impacc
