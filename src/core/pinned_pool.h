// Pre-pinned host staging buffers (section 3.7).
//
// Internode transfers of device-resident data stage through pinned host
// memory ("for better performance, the runtime internally uses the
// pre-pinned host memory"). Pinning is expensive, so the runtime keeps a
// per-node pool: buffers are recycled best-fit and only grown on miss.
// In this reproduction the pool's correctness (reuse, growth, accounting)
// is real; the pinning itself is what the cost model's staging paths
// already charge.
#pragma once

#include <cstdint>
#include <map>

#include "ult/sync.h"

namespace impacc::core {

class PinnedPool {
 public:
  struct Buffer {
    void* ptr = nullptr;
    std::uint64_t bytes = 0;
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;          // served from the free list
    std::uint64_t buffers_created = 0;
    std::uint64_t bytes_allocated = 0;  // total bytes ever pinned
    std::uint64_t bytes_retained = 0;   // free-list footprint right now
    std::uint64_t oversize_rejects = 0;  // best-fit buffer was > 2x request
    std::uint64_t trims = 0;             // buffers evicted by the cap
    std::uint64_t bytes_trimmed = 0;
    std::uint64_t bytes_in_use = 0;      // acquired and not yet released
    std::uint64_t bytes_in_use_peak = 0;
  };

  /// Retained-free-bytes cap: pinned memory is a scarce, registered
  /// resource, so the pool does not hold a long run's peak staging
  /// footprint forever (64 MiB keeps two maximal in-flight chunk pairs of
  /// every realistic chunk size around).
  static constexpr std::uint64_t kDefaultRetainBytes = 64ull << 20;

  /// `functional` allocates real memory; model-only runs track sizes only.
  explicit PinnedPool(bool functional) : functional_(functional) {}
  ~PinnedPool();

  PinnedPool(const PinnedPool&) = delete;
  PinnedPool& operator=(const PinnedPool&) = delete;

  /// Smallest free buffer of at least `bytes` — but never more than twice
  /// the request (a 4 KiB ask must not consume a 64 MiB staging buffer) —
  /// or a newly pinned exact-size one.
  Buffer acquire(std::uint64_t bytes);

  /// Return a buffer to the pool for reuse. If the free list now retains
  /// more than the cap, the largest free buffers are unpinned first (they
  /// are the expensive ones to keep and the cheapest to re-create later
  /// relative to their transfer time).
  void release(Buffer buffer);

  /// Override the retained-free-bytes cap (tests, memory-tight runs).
  void set_retain_limit(std::uint64_t bytes);

  Stats stats() const;

 private:
  void trim_locked();

  bool functional_;
  mutable ult::SpinLock lock_;
  std::multimap<std::uint64_t, void*> free_;  // size -> buffer
  Stats stats_;
  std::uint64_t retain_limit_ = kDefaultRetainBytes;
  std::uintptr_t next_fake_ = 1;  // model-only: distinct non-null tokens
};

}  // namespace impacc::core
