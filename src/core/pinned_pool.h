// Pre-pinned host staging buffers (section 3.7).
//
// Internode transfers of device-resident data stage through pinned host
// memory ("for better performance, the runtime internally uses the
// pre-pinned host memory"). Pinning is expensive, so the runtime keeps a
// per-node pool: buffers are recycled best-fit and only grown on miss.
// In this reproduction the pool's correctness (reuse, growth, accounting)
// is real; the pinning itself is what the cost model's staging paths
// already charge.
#pragma once

#include <cstdint>
#include <map>

#include "ult/sync.h"

namespace impacc::core {

class PinnedPool {
 public:
  struct Buffer {
    void* ptr = nullptr;
    std::uint64_t bytes = 0;
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;          // served from the free list
    std::uint64_t buffers_created = 0;
    std::uint64_t bytes_allocated = 0;  // total pinned footprint
  };

  /// `functional` allocates real memory; model-only runs track sizes only.
  explicit PinnedPool(bool functional) : functional_(functional) {}
  ~PinnedPool();

  PinnedPool(const PinnedPool&) = delete;
  PinnedPool& operator=(const PinnedPool&) = delete;

  /// Smallest free buffer of at least `bytes`, or a newly pinned one.
  Buffer acquire(std::uint64_t bytes);

  /// Return a buffer to the pool for reuse.
  void release(Buffer buffer);

  Stats stats() const;

 private:
  bool functional_;
  mutable ult::SpinLock lock_;
  std::multimap<std::uint64_t, void*> free_;  // size -> buffer
  Stats stats_;
  std::uintptr_t next_fake_ = 1;  // model-only: distinct non-null tokens
};

}  // namespace impacc::core
