// Launch configuration, feature toggles, and per-task statistics.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/fault.h"
#include "sim/time.h"
#include "sim/topology.h"

namespace impacc::core {

/// Which runtime model executes the application.
enum class Framework : int {
  kImpacc = 0,      // this paper: threaded tasks, fusion, aliasing, ...
  kMpiOpenacc = 1,  // baseline: process-per-task MPI + plain OpenACC
};

const char* framework_name(Framework f);

/// Whether kernels/copies actually move data (tests, examples) or only
/// advance virtual time (large benchmark points).
enum class ExecMode : int { kFunctional = 0, kModelOnly = 1 };

/// Ablation toggles for IMPACC's design choices (DESIGN.md section 6).
/// All default to the full IMPACC configuration.
struct Features {
  bool message_fusion = true;    // fuse matched intra-node pairs (Fig. 6)
  bool peer_dtod = true;         // GPUDirect-style direct DtoD copies
  bool heap_aliasing = true;     // node heap aliasing (section 3.8)
  bool unified_queue = true;     // MPI ops on activity queues (section 3.6)
  bool numa_pinning = true;      // near-socket task pinning (section 3.3)
  bool gpudirect_rdma = true;    // use fabric RDMA when available
  bool chunk_pipeline = true;    // chunked internode transfers (section 3.5)
  // Node-aware two-level collectives (section 3.5): intra-node shared
  // memory phase + inter-node phase over per-node leaders. Also
  // overridable via the IMPACC_HIER_COLLECTIVES environment variable.
  bool hier_collectives = true;
  // Batched handler rings (DESIGN.md section 9): the message handler
  // drains its MPSC queue with one-exchange batch detaches, matches
  // through the matcher's exact-key hash buckets, and coalesces
  // stats/completion/stream work per batch instead of per message. Pure
  // scheduling optimization — virtual times are identical either way; off
  // reproduces the per-message legacy loop bit for bit. Also overridable
  // via the IMPACC_HANDLER_BATCHING environment variable.
  bool handler_batching = true;
};

/// OpenACC device-type selection bits (IMPACC_ACC_DEVICE_TYPE, Fig. 2).
enum DeviceTypeMask : unsigned {
  kAccDeviceNvidia = 1u << 0,
  kAccDeviceXeonPhi = 1u << 1,
  kAccDeviceCpu = 1u << 2,
  // acc_device_default: every discrete accelerator; nodes without any get
  // one CPU-cores accelerator so they still host a task (Fig. 2 (a)).
  kAccDeviceDefault = 0u,
};

/// Parse "nvidia|xeonphi|cpu|default" (| separated) into a mask.
unsigned parse_device_type_mask(const std::string& spec);

/// Parse a byte-size spec with an optional K/M/G suffix ("256K", "1M",
/// "4194304"); returns 0 on anything unparseable.
std::uint64_t parse_size_bytes(const std::string& spec);

/// Strict full-consume numeric parses for environment knobs: the entire
/// string must be a valid number, otherwise they return false and leave
/// `*out` untouched. Callers warn and fall back to a documented default —
/// a malformed value must never silently disable the feature it
/// configures (the IMPACC_WATCHDOG atof bug).
bool parse_env_double(const std::string& s, double* out);
bool parse_env_int(const std::string& s, long* out);

/// Strict boolean env parse: "1|on|true|yes" / "0|off|false|no"
/// (case-insensitive). Returns false (and leaves `*out`) on anything else.
bool parse_env_bool(const std::string& s, bool* out);

/// Watchdog timeout used when IMPACC_WATCHDOG is set but malformed:
/// setting the variable at all expresses intent to enable the watchdog,
/// so the fallback is a real timeout, not "disabled".
constexpr double kDefaultWatchdogSeconds = 30.0;

/// Default chunk size of the internode transfer pipeline (1 MiB).
constexpr std::uint64_t kDefaultChunkBytes = 1ull << 20;

/// Everything launch() needs to stand up a run.
struct LaunchOptions {
  sim::ClusterDesc cluster;
  Framework framework = Framework::kImpacc;
  ExecMode mode = ExecMode::kFunctional;
  Features features;
  // Device-type selection; kAccDeviceDefault defers to the
  // IMPACC_ACC_DEVICE_TYPE environment variable, then to the default rule.
  unsigned device_type_mask = kAccDeviceDefault;
  int scheduler_workers = 0;  // 0 = auto
  // Node heap capacity (functional mode caps the backing mapping).
  std::uint64_t node_heap_bytes = 512ull << 20;
  // Chunk size of the internode transfer pipeline (section 3.5). 0 defers
  // to the IMPACC_CHUNK_SIZE environment variable, then to
  // kDefaultChunkBytes. Messages at most one chunk long go monolithic.
  std::uint64_t chunk_bytes = 0;
  // Write a Chrome-trace JSON of the virtual-time execution here (also
  // enabled by the IMPACC_TRACE environment variable). Empty = disabled
  // unless the env var is set.
  std::string trace_path;
  // Export a metrics snapshot here: "path[,format]" with format "json"
  // (default) or "prom"; "-" keeps it in memory only
  // (LaunchResult::metrics). Also enabled by IMPACC_METRICS. Empty =
  // disabled unless the env var is set.
  std::string metrics_path;
  // Record the causal dependency graph and publish critpath.* makespan
  // attribution gauges (also enabled by IMPACC_CRITPATH, or implicitly by
  // either of the two switches below). Off keeps Runtime::critpath() null
  // and virtual times bit-for-bit identical.
  bool critpath = false;
  // Write the human-readable critical-path report here at publish time
  // (IMPACC_PROF). Implies `critpath`.
  std::string prof_report_path;
  // Serialize the dependency graph here (impacc-critpath-graph v1) for
  // offline re-analysis with tools/impacc-prof (IMPACC_PROF_GRAPH).
  // Implies `critpath`.
  std::string critpath_graph_path;
  // Wall-clock hang watchdog (IMPACC_WATCHDOG): if no fiber becomes
  // runnable for this many seconds while tasks remain, dump per-task
  // blocked wait sites, matcher queues, and stream states to stderr and
  // _Exit(kWatchdogExitCode). 0 disables.
  double watchdog_seconds = 0;
  // Scheduled fault injection (DESIGN.md section 12). Merged with the
  // IMPACC_FAULT environment variable at launch; empty = no faults and
  // the fault-tolerance machinery stays entirely out of the run (virtual
  // times bit-for-bit identical to builds without it).
  sim::FaultPlan faults;
  // Deterministic scheduling mode (IMPACC_DETERMINISTIC): pin the fiber
  // scheduler to one worker so committed virtual times are bit-for-bit
  // reproducible across runs, including multi-node schedules where
  // wall-clock wake order otherwise permutes NIC/serialization grants
  // (DESIGN.md section 9). Recovery replay tests rely on this.
  bool deterministic = false;
};

/// Per-task time accounting, used by the breakdown figures (11, 14).
struct TaskStats {
  sim::Time kernel_busy = 0;  // sum of kernel costs on the task's device
  // Copy time by path; indexed by dev::CopyPathKind's integer value.
  std::array<sim::Time, 6> copy_time{};
  std::array<std::uint64_t, 6> copy_count{};
  sim::Time mpi_wait = 0;       // host time blocked in MPI completion
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t heap_aliases = 0;  // successful node-heap-alias matches
  std::uint64_t chunked_msgs = 0;  // internode sends split by the pipeline
  // Present-table memo cache effectiveness (host + device lookups).
  std::uint64_t present_cache_hits = 0;
  std::uint64_t present_cache_misses = 0;

  TaskStats& operator+=(const TaskStats& o);
};

}  // namespace impacc::core
