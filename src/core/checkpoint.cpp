#include "core/checkpoint.h"

#include <cstdlib>
#include <cstring>
#include <limits>

#include "acc/api.h"
#include "common/log.h"
#include "core/handler.h"
#include "core/message.h"
#include "core/runtime.h"
#include "core/task.h"
#include "mpi/api.h"

namespace impacc::core {

// --- fault firing ------------------------------------------------------------

void FtState::refresh_next_due() {
  double due = std::numeric_limits<double>::infinity();
  for (const auto& ev : plan_.events) {
    if (!ev.fired && !ev.skipped && ev.time < due) due = ev.time;
  }
  next_due_.store(due, std::memory_order_release);
}

void FtState::observe(sim::Time now) {
  if (fired_.load(std::memory_order_acquire)) return;
  if (now < next_due_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (fired_.load(std::memory_order_relaxed)) return;
  int best = -1;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    auto& ev = plan_.events[i];
    if (ev.fired || ev.skipped) continue;
    bool dead = false;
    for (const auto& ex : excluded_) {
      if (ex.node != ev.node) continue;
      if (ex.local_index < 0 || ex.local_index == ev.device) dead = true;
    }
    if (dead) {
      ev.skipped = true;
      IMPACC_LOG_WARN("fault %s skipped: target already failed",
                      sim::describe(ev).c_str());
      continue;
    }
    if (ev.time <= now &&
        (best < 0 || ev.time < plan_.events[static_cast<std::size_t>(best)].time)) {
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) {
    auto& ev = plan_.events[static_cast<std::size_t>(best)];
    ev.fired = true;
    fired_index_ = best;
    fault_time_ = ev.time;
    counters.faults++;
    IMPACC_LOG_WARN("fault injected: %s", sim::describe(ev).c_str());
    fired_.store(true, std::memory_order_release);
  }
  refresh_next_due();
}

sim::FaultEvent FtState::fired_event() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (fired_index_ < 0) return sim::FaultEvent{};
  return plan_.events[static_cast<std::size_t>(fired_index_)];
}

// --- exclusions --------------------------------------------------------------

bool FtState::node_excluded(int node) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ex : excluded_) {
    if (ex.node == node && ex.local_index < 0) return true;
  }
  return false;
}

bool FtState::host_excluded(int node, int local_index) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ex : excluded_) {
    if (ex.node != node) continue;
    if (ex.local_index < 0 || ex.local_index == local_index) return true;
  }
  return false;
}

int FtState::num_excluded_nodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  int n = 0;
  for (const auto& ex : excluded_) {
    if (ex.local_index < 0) ++n;
  }
  return n;
}

int FtState::num_excluded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(excluded_.size());
}

std::vector<std::pair<int, int>> FtState::exclusions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<int, int>> out;
  out.reserve(excluded_.size());
  for (const auto& ex : excluded_) out.emplace_back(ex.node, ex.local_index);
  return out;
}

// --- checkpoints -------------------------------------------------------------

namespace {
int committed_epoch_unlocked(
    const std::map<int, std::map<int, TaskSnapshot>>& snapshots,
    int num_tasks) {
  if (num_tasks <= 0) return 0;
  int committed = std::numeric_limits<int>::max();
  for (int rank = 0; rank < num_tasks; ++rank) {
    auto it = snapshots.find(rank);
    int latest = 0;
    if (it != snapshots.end() && !it->second.empty()) {
      latest = it->second.rbegin()->first;
    }
    if (latest < committed) committed = latest;
  }
  return committed == std::numeric_limits<int>::max() ? 0 : committed;
}
}  // namespace

void FtState::save_snapshot(int task, TaskSnapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  counters.checkpoints++;
  counters.checkpoint_bytes += snap.total_bytes();
  auto& per_rank = snapshots_[task];
  per_rank[snap.epoch] = std::move(snap);
  while (per_rank.size() > 2) per_rank.erase(per_rank.begin());
  // Entries consumed strictly before the committed epoch can never be in
  // a future replay set (restore epochs only grow): drop them.
  int committed = committed_epoch_unlocked(snapshots_, num_tasks_);
  for (auto it = log_.begin(); it != log_.end();) {
    if (it->second.consumed && it->second.consume_epoch < committed) {
      counters.pruned_msgs++;
      it = log_.erase(it);
    } else {
      ++it;
    }
  }
}

int FtState::committed_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return committed_epoch_unlocked(snapshots_, num_tasks_);
}

const TaskSnapshot* FtState::find_snapshot(int task, int epoch) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = snapshots_.find(task);
  if (it == snapshots_.end()) return nullptr;
  auto jt = it->second.find(epoch);
  if (jt == it->second.end()) return nullptr;
  return &jt->second;
}

// --- sender retention --------------------------------------------------------

std::uint64_t FtState::retain(const MsgCommand& cmd, int sent_epoch,
                              bool functional) {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t id = next_id_++;
  RetainedMsg& r = log_[id];
  r.id = id;
  r.context_id = cmd.context_id;
  r.tag = cmd.tag;
  r.src_task = cmd.src_task;
  r.dst_task = cmd.dst_task;
  r.src_comm_rank = cmd.src_comm_rank;
  r.bytes = cmd.bytes;
  r.sent_epoch = sent_epoch;
  if (!functional) {
    // Model-only: nothing to copy; replay re-injects timing only.
  } else if (!cmd.eager_payload.empty()) {
    r.payload = cmd.eager_payload;
  } else if (cmd.buf != nullptr && cmd.bytes > 0) {
    // Rendezvous send: the buffer holds the wire bytes and stays stable
    // until completion, so a copy taken at routing time is exact.
    const auto* p = static_cast<const unsigned char*>(cmd.buf);
    r.payload.assign(p, p + cmd.bytes);
  }
  counters.retained_msgs++;
  counters.retained_bytes += r.payload.size();
  return id;
}

void FtState::mark_consumed(std::uint64_t id, int consume_epoch) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = log_.find(id);
  if (it == log_.end()) return;  // already pruned as committed
  it->second.consumed = true;
  it->second.consume_epoch = consume_epoch;
}

std::vector<RetainedMsg> FtState::replay_set() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<RetainedMsg> out;
  out.reserve(log_.size());
  for (const auto& [id, r] : log_) out.push_back(r);
  return out;
}

// --- recovery ----------------------------------------------------------------

void FtState::begin_recovery() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fired_index_ < 0) return;
  auto& ev = plan_.events[static_cast<std::size_t>(fired_index_)];
  excluded_.push_back(Exclusion{ev.node, ev.device});

  restore_epoch_ = committed_epoch_unlocked(snapshots_, num_tasks_);
  restart_base_ = fault_time_ + kRestartLatency;
  recoveries_.push_back(
      RecoveryRecord{ev.node, ev.device, fault_time_, restart_base_});

  sim::Time reached = 0;  // furthest checkpointed progress being kept
  if (restore_epoch_ > 0) {
    for (const auto& [rank, per_rank] : snapshots_) {
      auto it = per_rank.find(restore_epoch_);
      if (it != per_rank.end() && it->second.clock > reached) {
        reached = it->second.clock;
      }
    }
  }
  if (fault_time_ > reached) counters.lost_seconds += fault_time_ - reached;
  counters.recovery_seconds += kRestartLatency;
  counters.recoveries++;

  // Prune the log down to the replay set: messages sent at or after the
  // restore epoch will be re-sent by the re-executing senders; messages
  // consumed before it are on both sides of the cut. What remains was in
  // flight across the cut and must be re-injected.
  for (auto it = log_.begin(); it != log_.end();) {
    RetainedMsg& r = it->second;
    if (r.sent_epoch >= restore_epoch_ ||
        (r.consumed && r.consume_epoch < restore_epoch_)) {
      counters.pruned_msgs++;
      it = log_.erase(it);
    } else {
      r.consumed = false;
      r.consume_epoch = 0;
      counters.replayed_msgs++;
      ++it;
    }
  }

  fired_index_ = -1;
  recovering_ = true;
  fired_.store(false, std::memory_order_release);
  refresh_next_due();
}

std::vector<RecoveryRecord> FtState::recovery_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recoveries_;
}

}  // namespace impacc::core

// --- public application API --------------------------------------------------

namespace impacc {

bool ft_armed() {
  core::Task* t = core::current_task();
  return t != nullptr && t->rt->ft() != nullptr;
}

void ft_protect(const char* name, void* ptr, std::uint64_t bytes) {
  core::Task& t = core::require_task("ft_protect");
  if (t.rt->ft() == nullptr) return;
  for (auto& r : t.ft_regions) {
    if (r.name == name) {  // re-registration after a restart
      r.ptr = ptr;
      r.bytes = bytes;
      return;
    }
  }
  t.ft_regions.push_back(core::FtRegion{name, ptr, bytes});
}

int ft_checkpoint() {
  core::Task& t = core::require_task("ft_checkpoint");
  core::FtState* ft = t.rt->ft();
  if (ft == nullptr) return 0;
  core::ft_check(t);  // abort here rather than cut a doomed checkpoint

  // Flush device copies of the protected regions so the host snapshot is
  // current; charged at the normal update-self cost.
  for (const auto& r : t.ft_regions) {
    if (acc::is_present(r.ptr)) acc::update_self(r.ptr, r.bytes);
  }

  int epoch = t.ft_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  core::TaskSnapshot snap;
  snap.epoch = epoch;
  std::uint64_t total = 0;
  for (const auto& r : t.ft_regions) {
    core::TaskSnapshot::Region out;
    out.name = r.name;
    if (t.functional() && r.ptr != nullptr && r.bytes > 0) {
      const auto* p = static_cast<const unsigned char*>(r.ptr);
      out.data.assign(p, p + r.bytes);
    }
    total += r.bytes;
    snap.regions.push_back(std::move(out));
  }
  t.clock.advance(core::kCheckpointLatency +
                  static_cast<double>(total) /
                      core::kCheckpointBandwidthBytesPerSec);
  snap.clock = t.clock.now();
  ft->save_snapshot(t.id, std::move(snap));

  mpi::barrier(mpi::world());
  return epoch;
}

int ft_restore() {
  core::Task& t = core::require_task("ft_restore");
  core::FtState* ft = t.rt->ft();
  if (ft == nullptr || !ft->recovering()) return 0;
  int epoch = ft->restore_epoch();
  if (epoch == 0) return 0;  // no committed checkpoint: restart from scratch
  const core::TaskSnapshot* snap = ft->find_snapshot(t.id, epoch);
  if (snap == nullptr) {
    IMPACC_LOG_ERROR(
        "ft_restore: task %d has no snapshot for committed epoch %d", t.id,
        epoch);
    std::abort();
  }
  std::uint64_t total = 0;
  for (const auto& r : t.ft_regions) {
    total += r.bytes;
    if (!t.functional()) continue;
    const core::TaskSnapshot::Region* found = nullptr;
    for (const auto& s : snap->regions) {
      if (s.name == r.name) {
        found = &s;
        break;
      }
    }
    if (found == nullptr || found->data.size() != r.bytes) {
      IMPACC_LOG_ERROR(
          "ft_restore: region \"%s\" (%llu bytes) does not match the "
          "snapshot from epoch %d",
          r.name.c_str(), static_cast<unsigned long long>(r.bytes), epoch);
      std::abort();
    }
    std::memcpy(r.ptr, found->data.data(), r.bytes);
  }
  t.clock.advance(core::kCheckpointLatency +
                  static_cast<double>(total) /
                      core::kCheckpointBandwidthBytesPerSec);
  t.ft_epoch.store(epoch, std::memory_order_release);
  return epoch;
}

}  // namespace impacc
