#include "core/directives.h"

#include "common/types.h"
#include "core/task.h"

namespace impacc::core {

// Directive validation lives here so both the acc API and the translator
// share one rule set.
namespace {
[[maybe_unused]] bool hint_well_formed(const MpiHint& h) {
  // recvbuf(device) and recvbuf(readonly)-with-aliasing are mutually
  // exclusive: aliasing requires host-heap buffers (section 3.8, req. 2).
  if (h.recv_device && h.recv_ptr_addr != nullptr) return false;
  return true;
}
}  // namespace

void set_mpi_hint(const MpiHint& hint) {
  Task& t = require_task("#pragma acc mpi outside a task");
  IMPACC_CHECK_MSG(hint_well_formed(hint),
                   "invalid #pragma acc mpi clause combination");
  t.hint = hint;
}

}  // namespace impacc::core
