// Message commands (section 3.7).
//
// Every MPI operation becomes a message command. Task threads enqueue
// commands onto their node's in-order lock-free MPSC queue; the node's
// message handler fiber matches send/recv pairs, fuses matched intra-node
// pairs into single copies, and completes requests with virtual times.
// Internode sends arrive at the destination node as kIncoming commands —
// the "pending internode message" of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mpsc_queue.h"
#include "dev/device.h"
#include "dev/stream.h"
#include "mpi/types.h"
#include "sim/time.h"

namespace impacc::core {

struct NodeRt;

struct MsgCommand : MpscNode {
  enum class Kind : int {
    kSend = 0,  // intra-node send (sender and receiver share the node)
    kRecv,      // posted receive
    kIncoming,  // internode send arriving at the receiver's node
    kProbe,     // MPI_Probe/Iprobe: inspect pending sends without receiving
  };

  Kind kind = Kind::kRecv;

  // Matching key.
  int context_id = 0;             // communicator context
  int tag = 0;                    // message tag (sends: >= 0)
  int src_task = mpi::kAnySource; // global task id (recvs may wildcard)
  int dst_task = 0;               // global task id
  int src_match_tag = 0;          // for recvs: requested tag or kAnyTag
  int src_comm_rank = 0;          // sends: sender's rank in the communicator

  // Buffer.
  void* buf = nullptr;
  std::uint64_t bytes = 0;           // sends: message size; recvs: capacity
  dev::Device* buf_dev = nullptr;    // nullptr => host memory
  bool near = true;                  // owner pinned near buf_dev?

  // Timeline.
  sim::Time ready = 0;    // sends: data available; recvs: posted
  sim::Time arrival = 0;  // kIncoming: virtual time data reaches the node

  // Completion plumbing.
  std::shared_ptr<mpi::RequestState> req;  // signaled at completion
  bool sender_completed = false;  // eager send: sender already signaled
  // Rendezvous internode send: receiver-side handler also completes the
  // sender's request (and stream) through these.
  std::shared_ptr<mpi::RequestState> remote_sender_req;
  dev::Stream* remote_sender_stream = nullptr;
  NodeRt* remote_sender_node = nullptr;

  // Unified activity queue: command was issued from this stream; its
  // completion resumes the stream (section 3.6).
  dev::Stream* stream = nullptr;
  NodeRt* stream_node = nullptr;

  // Node heap aliasing hints (section 3.8).
  bool readonly_hint = false;
  void** recv_ptr_addr = nullptr;

  // Eager protocol: sends below the threshold snapshot their payload so
  // the sender can reuse its buffer immediately. MPI_Ssend forces the
  // rendezvous path regardless of size.
  std::vector<unsigned char> eager_payload;
  bool force_rendezvous = false;
  // kProbe: blocking probes park until a matching send arrives;
  // non-blocking ones answer from the current matcher state.
  bool probe_blocking = false;

  // Derived-datatype receives: the handler unpacks the (packed) wire
  // bytes into the strided receive layout.
  mpi::Datatype recv_dtype = mpi::Datatype::kByte;
  int recv_count = 0;

  // Stats attribution.
  int owner_task = -1;  // task that issued this command

  // kIncoming: pointer to the sender's (in-process) buffer for the
  // functional copy, valid until completion for rendezvous sends.
  const void* wire_src = nullptr;

  // Chunked internode pipeline (section 3.5): nonzero when the sender
  // split the transfer into chunks of this size; chunk_arrivals[j] is the
  // virtual time chunk j is fully off the wire, so the receiver's handler
  // can overlap its HtoD staging with the remaining chunks in flight.
  std::uint64_t chunk_split = 0;
  std::vector<sim::Time> chunk_arrivals;

  // Message-lifecycle span (docs/OBSERVABILITY.md). Internode messages get
  // a nonzero span id when observability is on: the same id links the
  // send-side and recv-side trace rows via Chrome flow events, and the
  // posted time anchors the mpi.msg.phase.total histogram.
  std::uint64_t span_id = 0;
  sim::Time span_posted = 0;  // sender's ready time at route_send entry

  // Sender-retention id (core/checkpoint.h): nonzero once this send has
  // been entered into the fault-tolerance retention log — stamped at
  // routing time and carried by replayed copies, so a re-injected message
  // is never retained twice and its consumption updates the original log
  // entry. Always 0 when no fault plan is armed.
  std::uint64_t ft_id = 0;

  // Critical-path plumbing (src/obs/critpath.h); all 0 when the profiler
  // is off. `cp_pred` is the issuing task's compute segment, `cp_pred2`
  // the issuing stream's chain (unified-queue ops), `cp_node` the sender
  // side's last graph node (dtoh staging / wire) for kIncoming commands.
  std::uint32_t cp_pred = 0;
  std::uint32_t cp_pred2 = 0;
  std::uint32_t cp_node = 0;
};

}  // namespace impacc::core
