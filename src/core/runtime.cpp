#include "core/runtime.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"
#include "core/handler.h"
#include "core/mapping.h"
#include "core/pinning.h"

namespace impacc::core {

NodeRt::NodeRt(Runtime* rt_in, int index_in, const sim::NodeDesc* desc_in,
               std::uint64_t heap_bytes, bool functional)
    : rt(rt_in),
      index(index_in),
      desc(desc_in),
      heap(heap_bytes, functional),
      pinned(functional) {
  uvas.set_heap(&heap);
}

void NodeRt::schedule_stream(dev::Stream* s) {
  astream_lock.lock();
  active_streams.push_back(s);
  astream_lock.unlock();
  wake.set();
}

sim::Time NodeRt::nic_transmit(sim::Time ready, sim::Time wire) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, nic_free);
  const sim::Time done = start + wire;
  nic_free = done;
  nic_lock.unlock();
  return done;
}

std::vector<sim::Time> NodeRt::nic_transmit_chunked(
    sim::Time ready, const sim::LinkModel* prestage,
    const sim::LinkModel& wire, std::uint64_t bytes, std::uint64_t chunk) {
  sim::LinkModel stages[2];
  int num_stages = 0;
  if (prestage != nullptr) stages[num_stages++] = *prestage;
  const int wire_stage = num_stages;
  stages[num_stages++] = wire;
  sim::Time avail[2] = {ready, ready};
  nic_lock.lock();
  avail[wire_stage] = nic_free;
  std::vector<sim::Time> finishes = sim::chunk_pipeline_finishes(
      stages, num_stages, avail, ready, bytes, chunk);
  // The adapter is held through the whole pipelined transfer, like the
  // monolithic reservation would hold it for the whole wire time.
  nic_free = std::max(nic_free, finishes.back());
  nic_lock.unlock();
  return finishes;
}

sim::Time NodeRt::serialize_mpi(sim::Time ready, sim::Time hold) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, mpi_lock_free);
  const sim::Time release = start + hold;
  mpi_lock_free = release;
  nic_lock.unlock();
  return release;
}

Runtime::Runtime(LaunchOptions opts)
    : opts_(std::move(opts)), sched_(opts_.scheduler_workers) {
  // Resolve the device-type mask: explicit option, else environment
  // variable IMPACC_ACC_DEVICE_TYPE, else default (section 3.2).
  if (opts_.device_type_mask == kAccDeviceDefault) {
    if (const char* env = std::getenv("IMPACC_ACC_DEVICE_TYPE")) {
      opts_.device_type_mask = parse_device_type_mask(env);
    }
  }
  if (opts_.trace_path.empty()) {
    if (const char* env = std::getenv("IMPACC_TRACE")) {
      opts_.trace_path = env;
    }
  }
  // Resolve the pipeline chunk size: explicit option, else the
  // IMPACC_CHUNK_SIZE environment variable, else the 1 MiB default.
  if (opts_.chunk_bytes == 0) {
    if (const char* env = std::getenv("IMPACC_CHUNK_SIZE")) {
      opts_.chunk_bytes = parse_size_bytes(env);
    }
    if (opts_.chunk_bytes == 0) opts_.chunk_bytes = kDefaultChunkBytes;
  }
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_shared<sim::TraceSink>();
  }
  build_topology();
}

Runtime::~Runtime() = default;

void Runtime::build_topology() {
  const sim::ClusterDesc& cluster = opts_.cluster;
  const bool functional = opts_.mode == ExecMode::kFunctional;

  nodes_.reserve(static_cast<std::size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<NodeRt>(
        this, n, &cluster.nodes[static_cast<std::size_t>(n)],
        opts_.node_heap_bytes, functional));
  }

  const std::vector<Placement> placements =
      map_tasks(cluster, opts_.device_type_mask);
  IMPACC_CHECK_MSG(!placements.empty(),
                   "device-type mask selects no accelerators");

  const bool numa = opts_.features.numa_pinning &&
                    opts_.framework == Framework::kImpacc;

  std::vector<int> world_members;
  world_members.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& p = placements[i];
    NodeRt& node = *nodes_[static_cast<std::size_t>(p.node)];
    auto device = std::make_unique<dev::Device>(
        p.device, p.node, p.local_index, static_cast<int>(i), functional);

    auto task = std::make_unique<Task>();
    task->rt = this;
    task->node = &node;
    task->id = static_cast<int>(i);
    task->local_index = p.local_index;
    task->device = device.get();
    task->pinned_socket =
        choose_socket(*node.desc, p.device, numa, p.local_index);
    task->near = socket_is_near(*node.desc, p.device, task->pinned_socket);

    node.uvas.register_device(device.get());
    node.devices.push_back(std::move(device));
    node.tasks.push_back(task.get());
    tasks_.push_back(std::move(task));
    world_members.push_back(static_cast<int>(i));
  }

  world_ = adopt_comm(std::make_unique<mpi::Communicator>(
      next_context_id(), std::move(world_members)));
}

mpi::Comm Runtime::adopt_comm(std::unique_ptr<mpi::Communicator> c) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  comms_.push_back(std::move(c));
  return comms_.back().get();
}

int Runtime::agree_context(int parent_context, int creation_seq) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  auto [it, inserted] = agreed_contexts_.try_emplace(
      std::make_pair(parent_context, creation_seq), 0);
  if (inserted) it->second = next_context_.fetch_add(1);
  return it->second;
}

bool Runtime::rdma_enabled() const {
  return opts_.cluster.fabric.gpudirect_rdma && opts_.features.gpudirect_rdma &&
         opts_.framework == Framework::kImpacc;
}

void Runtime::run(const std::function<void()>& task_main) {
  tasks_remaining_.store(num_tasks(), std::memory_order_relaxed);

  for (auto& node : nodes_) {
    NodeRt* n = node.get();
    n->handler = sched_.spawn([n] { handler_main(n); },
                              "handler-" + std::to_string(n->index));
  }

  for (auto& task : tasks_) {
    Task* t = task.get();
    t->fiber = sched_.spawn(
        [this, t, &task_main] {
          ult::Scheduler::current()->set_user_data(t);
          task_main();
          if (tasks_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            for (auto& node : nodes_) {
              node->shutdown.store(true, std::memory_order_release);
              node->wake.set();
            }
          }
        },
        "task-" + std::to_string(t->id));
  }

  sched_.wait_all();
}

}  // namespace impacc::core
