#include "core/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "core/handler.h"
#include "core/mapping.h"
#include "core/pinning.h"

namespace impacc::core {

namespace {

/// common/log context provider: identifies the calling fiber as
/// "n<node>/t<task>" (task fibers) or by fiber name (handlers). Installed
/// once; reads only fiber-local state, so it is race-free even though
/// multiple Runtimes may exist.
int log_context(char* buf, std::size_t cap) {
  if (Task* t = current_task()) {
    return std::snprintf(buf, cap, "n%d/t%d", t->node->index, t->id);
  }
  ult::Fiber* f = ult::Scheduler::current();
  if (f != nullptr && !f->name().empty()) {
    return std::snprintf(buf, cap, "%s", f->name().c_str());
  }
  return 0;
}

}  // namespace

NodeRt::NodeRt(Runtime* rt_in, int index_in, const sim::NodeDesc* desc_in,
               std::uint64_t heap_bytes, bool functional)
    : rt(rt_in),
      index(index_in),
      desc(desc_in),
      handler_socket(choose_handler_socket(*desc_in)),
      heap(heap_bytes, functional),
      pinned(functional) {
  uvas.set_heap(&heap);
  // The matcher's hash-bucket fast path ships with the batched handler
  // loop; flag off keeps the legacy deque scans byte for byte.
  matcher.set_fast_path(rt->features().handler_batching);
}

void NodeRt::post(MsgCommand* cmd) {
  const int depth = queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  if (sim::TraceSink* tr = rt->trace()) {
    tr->record_counter(index, "handler queue depth", "commands",
                       cmd->kind == MsgCommand::Kind::kIncoming ? cmd->arrival
                                                                : cmd->ready,
                       depth);
  }
  queue.push(cmd);
  wake.set();
}

void NodeRt::schedule_stream(dev::Stream* s) {
  astream_lock.lock();
  active_streams.push_back(s);
  astream_lock.unlock();
  wake.set();
}

sim::Time NodeRt::nic_transmit(sim::Time ready, sim::Time wire) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, nic_free);
  const sim::Time done = start + wire;
  nic_free = done;
  nic_lock.unlock();
  return done;
}

std::vector<sim::Time> NodeRt::nic_transmit_chunked(
    sim::Time ready, const sim::LinkModel* prestage,
    const sim::LinkModel& wire, std::uint64_t bytes, std::uint64_t chunk) {
  sim::LinkModel stages[2];
  int num_stages = 0;
  if (prestage != nullptr) stages[num_stages++] = *prestage;
  const int wire_stage = num_stages;
  stages[num_stages++] = wire;
  sim::Time avail[2] = {ready, ready};
  nic_lock.lock();
  avail[wire_stage] = nic_free;
  std::vector<sim::Time> finishes = sim::chunk_pipeline_finishes(
      stages, num_stages, avail, ready, bytes, chunk);
  // The adapter is held through the whole pipelined transfer, like the
  // monolithic reservation would hold it for the whole wire time.
  nic_free = std::max(nic_free, finishes.back());
  nic_lock.unlock();
  return finishes;
}

sim::Time NodeRt::serialize_mpi(sim::Time ready, sim::Time hold) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, mpi_lock_free);
  const sim::Time release = start + hold;
  mpi_lock_free = release;
  nic_lock.unlock();
  return release;
}

Runtime::Runtime(LaunchOptions opts)
    : opts_(std::move(opts)), sched_(opts_.scheduler_workers) {
  // Resolve the device-type mask: explicit option, else environment
  // variable IMPACC_ACC_DEVICE_TYPE, else default (section 3.2).
  if (opts_.device_type_mask == kAccDeviceDefault) {
    if (const char* env = std::getenv("IMPACC_ACC_DEVICE_TYPE")) {
      opts_.device_type_mask = parse_device_type_mask(env);
    }
  }
  if (opts_.trace_path.empty()) {
    if (const char* env = std::getenv("IMPACC_TRACE")) {
      opts_.trace_path = env;
    }
  }
  // Resolve the pipeline chunk size: explicit option, else the
  // IMPACC_CHUNK_SIZE environment variable, else the 1 MiB default.
  if (opts_.chunk_bytes == 0) {
    if (const char* env = std::getenv("IMPACC_CHUNK_SIZE")) {
      opts_.chunk_bytes = parse_size_bytes(env);
    }
    if (opts_.chunk_bytes == 0) opts_.chunk_bytes = kDefaultChunkBytes;
  }
  if (opts_.metrics_path.empty()) {
    if (const char* env = std::getenv("IMPACC_METRICS")) {
      opts_.metrics_path = env;
    }
  }
  // IMPACC_HIER_COLLECTIVES=0|off|false disables the node-aware two-level
  // collectives without rebuilding (ablation runs); anything else enables.
  if (const char* env = std::getenv("IMPACC_HIER_COLLECTIVES")) {
    const std::string v = env;
    opts_.features.hier_collectives = !(v == "0" || v == "off" || v == "false");
  }
  // IMPACC_HANDLER_BATCHING=0|off|false falls back to the per-message
  // handler loop and the matcher's linear scans (DESIGN.md section 9).
  if (const char* env = std::getenv("IMPACC_HANDLER_BATCHING")) {
    const std::string v = env;
    opts_.features.handler_batching = !(v == "0" || v == "off" || v == "false");
  }
  // Critical-path profiler switches (DESIGN.md section 10): IMPACC_CRITPATH
  // records the graph, IMPACC_PROF additionally writes the report,
  // IMPACC_PROF_GRAPH serializes the graph for tools/impacc-prof. Any of
  // the three brings the recorder up.
  if (const char* env = std::getenv("IMPACC_CRITPATH")) {
    const std::string v = env;
    opts_.critpath = !(v == "0" || v == "off" || v == "false");
  }
  if (opts_.prof_report_path.empty()) {
    if (const char* env = std::getenv("IMPACC_PROF")) {
      opts_.prof_report_path = env;
    }
  }
  if (opts_.critpath_graph_path.empty()) {
    if (const char* env = std::getenv("IMPACC_PROF_GRAPH")) {
      opts_.critpath_graph_path = env;
    }
  }
  if (!opts_.prof_report_path.empty() || !opts_.critpath_graph_path.empty()) {
    opts_.critpath = true;
  }
  if (opts_.watchdog_seconds <= 0) {
    if (const char* env = std::getenv("IMPACC_WATCHDOG")) {
      opts_.watchdog_seconds = std::atof(env);
    }
  }
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_shared<sim::TraceSink>();
  }
  if (opts_.critpath) {
    critpath_ = std::make_unique<obs::CritPath>();
  }
  // Observability comes up with tracing OR metrics export: spans need ids
  // even when only the trace is on, and the registry feeds both
  // LaunchResult::metrics and the metrics file. The critical-path profiler
  // needs it too, so its attribution gauges have somewhere to publish.
  if (trace_ != nullptr || !opts_.metrics_path.empty() ||
      critpath_ != nullptr) {
    obs_ = std::make_unique<obs::Observability>(
        obs::parse_metrics_spec(opts_.metrics_path));
  }
  log::set_context_provider(&log_context);
  build_topology();
}

Runtime::~Runtime() = default;

void Runtime::build_topology() {
  const sim::ClusterDesc& cluster = opts_.cluster;
  const bool functional = opts_.mode == ExecMode::kFunctional;

  nodes_.reserve(static_cast<std::size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<NodeRt>(
        this, n, &cluster.nodes[static_cast<std::size_t>(n)],
        opts_.node_heap_bytes, functional));
  }

  const std::vector<Placement> placements =
      map_tasks(cluster, opts_.device_type_mask);
  IMPACC_CHECK_MSG(!placements.empty(),
                   "device-type mask selects no accelerators");

  const bool numa = opts_.features.numa_pinning &&
                    opts_.framework == Framework::kImpacc;

  std::vector<int> world_members;
  world_members.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& p = placements[i];
    NodeRt& node = *nodes_[static_cast<std::size_t>(p.node)];
    auto device = std::make_unique<dev::Device>(
        p.device, p.node, p.local_index, static_cast<int>(i), functional);

    auto task = std::make_unique<Task>();
    task->rt = this;
    task->node = &node;
    task->id = static_cast<int>(i);
    task->local_index = p.local_index;
    task->device = device.get();
    task->pinned_socket =
        choose_socket(*node.desc, p.device, numa, p.local_index);
    task->near = socket_is_near(*node.desc, p.device, task->pinned_socket);

    node.uvas.register_device(device.get());
    node.devices.push_back(std::move(device));
    node.tasks.push_back(task.get());
    tasks_.push_back(std::move(task));
    world_members.push_back(static_cast<int>(i));
  }

  world_ = adopt_comm(std::make_unique<mpi::Communicator>(
      next_context_id(), std::move(world_members)));
}

mpi::Comm Runtime::adopt_comm(std::unique_ptr<mpi::Communicator> c) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  comms_.push_back(std::move(c));
  return comms_.back().get();
}

int Runtime::agree_context(int parent_context, int creation_seq) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  auto [it, inserted] = agreed_contexts_.try_emplace(
      std::make_pair(parent_context, creation_seq), 0);
  if (inserted) it->second = next_context_.fetch_add(1);
  return it->second;
}

bool Runtime::rdma_enabled() const {
  return opts_.cluster.fabric.gpudirect_rdma && opts_.features.gpudirect_rdma &&
         opts_.framework == Framework::kImpacc;
}

void Runtime::run(const std::function<void()>& task_main) {
  tasks_remaining_.store(num_tasks(), std::memory_order_relaxed);

  if (opts_.watchdog_seconds > 0) {
    watchdog_stop_.store(false, std::memory_order_release);
    watchdog_ = std::thread([this] { watchdog_main(); });
  }

  if (obs_ != nullptr) {
    // Ready-fiber sampler: every push feeds the ult.sched.ready_fibers
    // histogram; with tracing on, a throttled counter track is emitted on
    // its own pid (num_nodes()). Scheduling is an OS-level activity, so
    // this one track is wall-clock microseconds, not virtual time — the
    // row is labeled accordingly.
    const auto t0 = std::chrono::steady_clock::now();
    auto last_emit_us = std::make_shared<std::atomic<long long>>(-1000000);
    sched_.set_ready_sampler([this, t0, last_emit_us](std::size_t depth) {
      obs_->ready_fibers->record(static_cast<double>(depth));
      if (trace_ == nullptr) return;
      const long long us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      long long prev = last_emit_us->load(std::memory_order_relaxed);
      if (us - prev < 200) return;  // throttle: ≥200 µs between samples
      if (!last_emit_us->compare_exchange_strong(prev, us,
                                                 std::memory_order_relaxed)) {
        return;
      }
      trace_->record_counter(num_nodes(), "ready fibers (wall clock)",
                             "fibers", static_cast<double>(us) * 1e-6,
                             static_cast<double>(depth));
    });
  }

  for (auto& node : nodes_) {
    NodeRt* n = node.get();
    n->handler = sched_.spawn([n] { handler_main(n); },
                              "handler-" + std::to_string(n->index));
  }

  for (auto& task : tasks_) {
    Task* t = task.get();
    t->fiber = sched_.spawn(
        [this, t, &task_main] {
          ult::Scheduler::current()->set_user_data(t);
          task_main();
          if (tasks_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            for (auto& node : nodes_) {
              node->shutdown.store(true, std::memory_order_release);
              node->wake.set();
            }
          }
        },
        "task-" + std::to_string(t->id));
  }

  sched_.wait_all();
  if (watchdog_.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog_.join();
  }
  if (obs_ != nullptr) sched_.set_ready_sampler({});
}

void Runtime::watchdog_main() {
  // Progress = fibers becoming runnable. A waitany/test poll loop keeps
  // yielding (and so keeps the counter moving); a true deadlock — nothing
  // runnable, every task parked — freezes it. The one blind spot is a
  // single functional kernel body grinding for longer than the limit
  // without yielding; pick the limit accordingly.
  const double limit = opts_.watchdog_seconds;
  std::uint64_t last_events = sched_.ready_events();
  auto last_progress = std::chrono::steady_clock::now();
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t events = sched_.ready_events();
    if (events != last_events) {
      last_events = events;
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (tasks_remaining_.load(std::memory_order_acquire) <= 0) continue;
    const double idle = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - last_progress)
                            .count();
    if (idle < limit) continue;
    dump_hang_diagnostics(idle);
    std::fflush(stderr);
    // The run cannot make progress; tear the process down with the
    // distinct watchdog code (no atexit/destructors — fibers are parked).
    std::_Exit(kWatchdogExitCode);
  }
}

void Runtime::dump_hang_diagnostics(double idle_seconds) {
  std::fprintf(stderr,
               "[impacc watchdog] no scheduler progress for %.2f s with %d "
               "task(s) unfinished; dumping state\n",
               idle_seconds,
               tasks_remaining_.load(std::memory_order_relaxed));
  std::string blocked_ids;
  for (const auto& t : tasks_) {
    t->wd_lock.lock();
    const char* site = t->wd_site;
    const int context = t->wd_context;
    const int peer = t->wd_peer;
    const int tag = t->wd_tag;
    const std::uint64_t bytes = t->wd_bytes;
    t->wd_lock.unlock();
    if (site != nullptr) {
      std::fprintf(stderr,
                   "  task %d (node %d, clock %.6f ms): blocked in %s "
                   "(context=%d peer=%d tag=%d bytes=%llu)\n",
                   t->id, t->node->index, sim::to_ms(t->clock.now()), site,
                   context, peer, tag,
                   static_cast<unsigned long long>(bytes));
      if (!blocked_ids.empty()) blocked_ids += ' ';
      blocked_ids += std::to_string(t->id);
    } else {
      std::fprintf(stderr,
                   "  task %d (node %d, clock %.6f ms): no registered wait "
                   "site\n",
                   t->id, t->node->index, sim::to_ms(t->clock.now()));
    }
  }
  for (const auto& n : nodes_) {
    std::fprintf(stderr, "  node %d: handler queue depth=%d\n", n->index,
                 n->queue_depth.load(std::memory_order_relaxed));
    // The handler fiber is parked (no progress), so reading the matcher
    // and the streams is quiescent here.
    const std::string matcher = n->matcher.debug_dump();
    std::fprintf(stderr, "%s", matcher.c_str());
    for (const auto& d : n->devices) {
      for (const auto& s : d->streams()) {
        std::fprintf(stderr, "    %s\n", s->debug_state().c_str());
      }
    }
  }
  std::string blocked = "blocked tasks:";
  if (!blocked_ids.empty()) blocked += " " + blocked_ids;
  std::fprintf(stderr, "%s\n", blocked.c_str());
}

void Runtime::publish_run_metrics(const TaskStats& total, sim::Time makespan,
                                  obs::MetricsSnapshot* out) {
  if (critpath_ != nullptr) publish_critpath(makespan);
  if (obs_ == nullptr) return;
  obs::Registry& reg = obs_->registry();

  // Run shape.
  reg.gauge("core.makespan_seconds")->set(makespan);
  reg.gauge("core.num_tasks")->set(num_tasks());
  reg.gauge("core.num_nodes")->set(num_nodes());
  for (const auto& n : nodes_) {
    reg.gauge("core.node" + std::to_string(n->index) + ".handler_socket")
        ->set(n->handler_socket);
  }
  if (trace_ != nullptr) {
    // Label the pid rows: node index + where its handler thread is pinned,
    // plus the wall-clock scheduler row.
    for (const auto& n : nodes_) {
      trace_->record_meta(n->index, "process_name",
                          "node" + std::to_string(n->index) +
                              " (handler socket " +
                              std::to_string(n->handler_socket) + ")");
    }
    trace_->record_meta(num_nodes(), "process_name",
                        "scheduler (wall clock)");
  }

  // TaskStats totals. The copy/wait *model* gauges mirror what the live
  // dev.copy.*/mpi.wait histograms accumulated — equal by construction
  // (every accounting site goes through account_copy / the wait site), and
  // asserted by tests and tools/impacc-smoke.
  reg.gauge("mpi.msgs_sent")->set(static_cast<double>(total.msgs_sent));
  reg.gauge("mpi.msgs_recv")->set(static_cast<double>(total.msgs_recv));
  reg.gauge("mpi.bytes_sent")->set(static_cast<double>(total.bytes_sent));
  reg.gauge("mpi.chunked_msgs")->set(static_cast<double>(total.chunked_msgs));
  reg.gauge("mpi.wait.model_seconds")->set(total.mpi_wait);
  reg.gauge("acc.kernel.model_seconds")->set(total.kernel_busy);
  reg.gauge("core.heap_aliases")->set(static_cast<double>(total.heap_aliases));
  for (int i = 0; i < 6; ++i) {
    const std::string prefix =
        std::string("dev.copy.") +
        dev::copy_path_slug(static_cast<dev::CopyPathKind>(i));
    reg.gauge(prefix + ".model_seconds")
        ->set(total.copy_time[static_cast<std::size_t>(i)]);
    reg.gauge(prefix + ".model_count")
        ->set(static_cast<double>(
            total.copy_count[static_cast<std::size_t>(i)]));
  }

  // Present-table memo caches, summed over tasks (acc.present_table.*).
  acc::PresentTable::CacheStats cache;
  for (const auto& t : tasks_) {
    const acc::PresentTable::CacheStats& cs = t->present.cache_stats();
    cache.host_hits += cs.host_hits;
    cache.host_misses += cs.host_misses;
    cache.dev_hits += cs.dev_hits;
    cache.dev_misses += cs.dev_misses;
    cache.invalidations += cs.invalidations;
  }
  reg.gauge("acc.present_table.host_hits")
      ->set(static_cast<double>(cache.host_hits));
  reg.gauge("acc.present_table.host_misses")
      ->set(static_cast<double>(cache.host_misses));
  reg.gauge("acc.present_table.dev_hits")
      ->set(static_cast<double>(cache.dev_hits));
  reg.gauge("acc.present_table.dev_misses")
      ->set(static_cast<double>(cache.dev_misses));
  reg.gauge("acc.present_table.invalidations")
      ->set(static_cast<double>(cache.invalidations));

  // Pinned staging pools and matchers, summed over nodes.
  PinnedPool::Stats pool;
  mpi::Matcher::Stats match;
  for (const auto& n : nodes_) {
    const PinnedPool::Stats ps = n->pinned.stats();
    pool.acquires += ps.acquires;
    pool.hits += ps.hits;
    pool.buffers_created += ps.buffers_created;
    pool.bytes_allocated += ps.bytes_allocated;
    pool.bytes_retained += ps.bytes_retained;
    pool.oversize_rejects += ps.oversize_rejects;
    pool.trims += ps.trims;
    pool.bytes_trimmed += ps.bytes_trimmed;
    pool.bytes_in_use += ps.bytes_in_use;
    pool.bytes_in_use_peak =
        std::max(pool.bytes_in_use_peak, ps.bytes_in_use_peak);
    const mpi::Matcher::Stats& ms = n->matcher.stats();
    match.matched += ms.matched;
    match.unexpected_queued += ms.unexpected_queued;
    match.recvs_queued += ms.recvs_queued;
    match.probes_parked += ms.probes_parked;
    match.fastpath_hits += ms.fastpath_hits;
  }
  reg.gauge("core.pinned_pool.acquires")
      ->set(static_cast<double>(pool.acquires));
  reg.gauge("core.pinned_pool.hits")->set(static_cast<double>(pool.hits));
  reg.gauge("core.pinned_pool.buffers_created")
      ->set(static_cast<double>(pool.buffers_created));
  reg.gauge("core.pinned_pool.bytes_allocated")
      ->set(static_cast<double>(pool.bytes_allocated));
  reg.gauge("core.pinned_pool.bytes_retained")
      ->set(static_cast<double>(pool.bytes_retained));
  reg.gauge("core.pinned_pool.oversize_rejects")
      ->set(static_cast<double>(pool.oversize_rejects));
  reg.gauge("core.pinned_pool.trims")->set(static_cast<double>(pool.trims));
  reg.gauge("core.pinned_pool.bytes_trimmed")
      ->set(static_cast<double>(pool.bytes_trimmed));
  reg.gauge("core.pinned_pool.bytes_in_use_peak")
      ->set(static_cast<double>(pool.bytes_in_use_peak));
  reg.gauge("mpi.matcher.matched")->set(static_cast<double>(match.matched));
  reg.gauge("mpi.matcher.unexpected_queued")
      ->set(static_cast<double>(match.unexpected_queued));
  reg.gauge("mpi.matcher.recvs_queued")
      ->set(static_cast<double>(match.recvs_queued));
  reg.gauge("mpi.matcher.probes_parked")
      ->set(static_cast<double>(match.probes_parked));
  reg.gauge("mpi.matcher.fastpath_hits")
      ->set(static_cast<double>(match.fastpath_hits));

  // Scheduler.
  reg.gauge("ult.sched.workers")->set(sched_.num_workers());
  reg.gauge("ult.sched.fibers_spawned")
      ->set(static_cast<double>(sched_.fibers_spawned()));
  reg.gauge("ult.sched.fibers_finished")
      ->set(static_cast<double>(sched_.fibers_finished()));

  obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsConfig& cfg = obs_->config();
  if (!cfg.path.empty() && cfg.path != "-") {
    if (!snap.write_file(cfg.path, cfg.format)) {
      IMPACC_LOG_WARN("could not write metrics to %s", cfg.path.c_str());
    }
  }
  if (out != nullptr) *out = std::move(snap);
}

void Runtime::publish_critpath(sim::Time makespan) {
  obs::CritPath* cp = critpath_.get();

  // Close every task's final compute segment so each dependency chain
  // reaches the end of the run; the last-finishing task's segment is the
  // backward walk's end node (its end == makespan by definition).
  Task* last = nullptr;
  for (const auto& t : tasks_) {
    if (last == nullptr || t->clock.now() > last->clock.now()) last = t.get();
  }
  std::uint32_t end_node = 0;
  for (const auto& t : tasks_) {
    const std::uint32_t id = cp_checkpoint(*t, cp);
    if (t.get() == last) end_node = id;
  }

  // The slice list only feeds the trace overlay and the report's top-N
  // table; gauge-only runs can skip collecting it.
  const bool want_path = trace_ != nullptr || !opts_.prof_report_path.empty();
  const obs::CritPath::Report rep = cp->analyze(makespan, end_node, want_path);

  if (obs_ != nullptr) {
    obs::Registry& reg = obs_->registry();
    for (int c = 0; c < obs::kCritCategoryCount; ++c) {
      const std::string prefix =
          std::string("critpath.") +
          obs::crit_category_slug(static_cast<obs::CritCategory>(c));
      reg.gauge(prefix + ".seconds")->set(rep.seconds[c]);
      reg.gauge(prefix + ".fraction")
          ->set(makespan > 0 ? rep.seconds[c] / makespan : 0);
    }
  }

  if (trace_ != nullptr) {
    // Overlay the on-path slices on their own pid so Perfetto highlights
    // the path without disturbing the per-node rows (whose categories the
    // smoke tool asserts on).
    const int pid = num_nodes() + 1;
    trace_->record_meta(pid, "process_name", "critical path");
    for (const auto& s : rep.path) {
      if (s.attributed <= 0 || s.end <= s.start) continue;
      trace_->record(
          pid, "critical path",
          s.label.empty() ? obs::crit_category_slug(s.cat) : s.label,
          "critpath", s.start, s.end);
    }
  }

  if (!opts_.prof_report_path.empty()) {
    const std::string report = cp->format_report(rep);
    if (opts_.prof_report_path == "-") {
      std::fputs(report.c_str(), stderr);
    } else {
      std::FILE* f = std::fopen(opts_.prof_report_path.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(report.data(), 1, report.size(), f) != report.size()) {
        IMPACC_LOG_WARN("could not write profile report to %s",
                        opts_.prof_report_path.c_str());
      }
      if (f != nullptr) std::fclose(f);
    }
  }
  if (!opts_.critpath_graph_path.empty() &&
      opts_.critpath_graph_path != "-") {
    if (!cp->save_graph(opts_.critpath_graph_path, makespan, end_node)) {
      IMPACC_LOG_WARN("could not write critpath graph to %s",
                      opts_.critpath_graph_path.c_str());
    }
  }
}

}  // namespace impacc::core
