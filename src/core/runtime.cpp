#include "core/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"
#include "core/handler.h"
#include "core/mapping.h"
#include "core/pinning.h"

namespace impacc::core {

namespace {

/// common/log context provider: identifies the calling fiber as
/// "n<node>/t<task>" (task fibers) or by fiber name (handlers). Installed
/// once; reads only fiber-local state, so it is race-free even though
/// multiple Runtimes may exist.
int log_context(char* buf, std::size_t cap) {
  if (Task* t = current_task()) {
    return std::snprintf(buf, cap, "n%d/t%d", t->node->index, t->id);
  }
  ult::Fiber* f = ult::Scheduler::current();
  if (f != nullptr && !f->name().empty()) {
    return std::snprintf(buf, cap, "%s", f->name().c_str());
  }
  return 0;
}

}  // namespace

NodeRt::NodeRt(Runtime* rt_in, int index_in, const sim::NodeDesc* desc_in,
               std::uint64_t heap_bytes, bool functional)
    : rt(rt_in),
      index(index_in),
      desc(desc_in),
      handler_socket(choose_handler_socket(*desc_in)),
      heap(heap_bytes, functional),
      pinned(functional) {
  uvas.set_heap(&heap);
  // The matcher's hash-bucket fast path ships with the batched handler
  // loop; flag off keeps the legacy deque scans byte for byte.
  matcher.set_fast_path(rt->features().handler_batching);
}

void NodeRt::post(MsgCommand* cmd) {
  const int depth = queue_depth.fetch_add(1, std::memory_order_relaxed) + 1;
  if (sim::TraceSink* tr = rt->trace()) {
    tr->record_counter(index, "handler queue depth", "commands",
                       cmd->kind == MsgCommand::Kind::kIncoming ? cmd->arrival
                                                                : cmd->ready,
                       depth);
  }
  queue.push(cmd);
  wake.set();
}

void NodeRt::schedule_stream(dev::Stream* s) {
  astream_lock.lock();
  active_streams.push_back(s);
  astream_lock.unlock();
  wake.set();
}

sim::Time NodeRt::nic_transmit(sim::Time ready, sim::Time wire) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, nic_free);
  const sim::Time done = start + wire;
  nic_free = done;
  nic_lock.unlock();
  return done;
}

std::vector<sim::Time> NodeRt::nic_transmit_chunked(
    sim::Time ready, const sim::LinkModel* prestage,
    const sim::LinkModel& wire, std::uint64_t bytes, std::uint64_t chunk) {
  sim::LinkModel stages[2];
  int num_stages = 0;
  if (prestage != nullptr) stages[num_stages++] = *prestage;
  const int wire_stage = num_stages;
  stages[num_stages++] = wire;
  sim::Time avail[2] = {ready, ready};
  nic_lock.lock();
  avail[wire_stage] = nic_free;
  std::vector<sim::Time> finishes = sim::chunk_pipeline_finishes(
      stages, num_stages, avail, ready, bytes, chunk);
  // The adapter is held through the whole pipelined transfer, like the
  // monolithic reservation would hold it for the whole wire time.
  nic_free = std::max(nic_free, finishes.back());
  nic_lock.unlock();
  return finishes;
}

sim::Time NodeRt::serialize_mpi(sim::Time ready, sim::Time hold) {
  nic_lock.lock();
  const sim::Time start = std::max(ready, mpi_lock_free);
  const sim::Time release = start + hold;
  mpi_lock_free = release;
  nic_lock.unlock();
  return release;
}

namespace {

/// Strict on/off feature-flag resolution. The old pattern ("anything but
/// 0|off|false enables") silently flipped a flag to its default on typos
/// like "of" or "flase"; now a value that parses applies and anything
/// else warns and changes nothing.
void env_flag(const char* name, bool* flag) {
  const char* env = std::getenv(name);
  if (env == nullptr) return;
  bool v = *flag;
  if (parse_env_bool(env, &v)) {
    *flag = v;
  } else {
    IMPACC_LOG_WARN(
        "%s: unrecognized value \"%s\" ignored "
        "(expected 1|on|true|yes or 0|off|false|no); keeping %s",
        name, env, *flag ? "on" : "off");
  }
}

}  // namespace

int Runtime::resolve_worker_count(LaunchOptions& opts) {
  if (const char* env = std::getenv("IMPACC_DETERMINISTIC")) {
    bool v = opts.deterministic;
    if (parse_env_bool(env, &v)) {
      opts.deterministic = v;
    } else {
      IMPACC_LOG_WARN(
          "IMPACC_DETERMINISTIC: unrecognized value \"%s\" ignored "
          "(expected 1|on|true|yes or 0|off|false|no)",
          env);
    }
  }
  return opts.deterministic ? 1 : opts.scheduler_workers;
}

Runtime::Runtime(LaunchOptions opts, FtState* ft)
    : opts_(std::move(opts)), ft_(ft), sched_(resolve_worker_count(opts_)) {
  // Resolve the device-type mask: explicit option, else environment
  // variable IMPACC_ACC_DEVICE_TYPE, else default (section 3.2).
  if (opts_.device_type_mask == kAccDeviceDefault) {
    if (const char* env = std::getenv("IMPACC_ACC_DEVICE_TYPE")) {
      opts_.device_type_mask = parse_device_type_mask(env);
    }
  }
  if (opts_.trace_path.empty()) {
    if (const char* env = std::getenv("IMPACC_TRACE")) {
      opts_.trace_path = env;
    }
  }
  // Resolve the pipeline chunk size: explicit option, else the
  // IMPACC_CHUNK_SIZE environment variable, else the 1 MiB default. A
  // malformed spec must not silently drop the pipeline to the default —
  // say so (same hardening as IMPACC_WATCHDOG below).
  if (opts_.chunk_bytes == 0) {
    if (const char* env = std::getenv("IMPACC_CHUNK_SIZE")) {
      opts_.chunk_bytes = parse_size_bytes(env);
      if (opts_.chunk_bytes == 0) {
        IMPACC_LOG_WARN(
            "IMPACC_CHUNK_SIZE: malformed size \"%s\"; using the default "
            "%llu bytes",
            env, static_cast<unsigned long long>(kDefaultChunkBytes));
      }
    }
    if (opts_.chunk_bytes == 0) opts_.chunk_bytes = kDefaultChunkBytes;
  }
  if (opts_.metrics_path.empty()) {
    if (const char* env = std::getenv("IMPACC_METRICS")) {
      opts_.metrics_path = env;
    }
  }
  // Node-aware two-level collectives and the batched handler loop can be
  // toggled without rebuilding (ablation runs; DESIGN.md section 9).
  env_flag("IMPACC_HIER_COLLECTIVES", &opts_.features.hier_collectives);
  env_flag("IMPACC_HANDLER_BATCHING", &opts_.features.handler_batching);
  // Critical-path profiler switches (DESIGN.md section 10): IMPACC_CRITPATH
  // records the graph, IMPACC_PROF additionally writes the report,
  // IMPACC_PROF_GRAPH serializes the graph for tools/impacc-prof. Any of
  // the three brings the recorder up.
  env_flag("IMPACC_CRITPATH", &opts_.critpath);
  if (opts_.prof_report_path.empty()) {
    if (const char* env = std::getenv("IMPACC_PROF")) {
      opts_.prof_report_path = env;
    }
  }
  if (opts_.critpath_graph_path.empty()) {
    if (const char* env = std::getenv("IMPACC_PROF_GRAPH")) {
      opts_.critpath_graph_path = env;
    }
  }
  if (!opts_.prof_report_path.empty() || !opts_.critpath_graph_path.empty()) {
    opts_.critpath = true;
  }
  if (opts_.watchdog_seconds <= 0) {
    if (const char* env = std::getenv("IMPACC_WATCHDOG")) {
      // Strict parse. The old std::atof here returned 0.0 for any
      // malformed value — "30s", "1e", "abc" — which silently *disabled*
      // the watchdog the user explicitly asked for. Setting the variable
      // at all expresses intent to enable, so the malformed-value
      // fallback is a real timeout, loudly.
      double v = 0;
      if (parse_env_double(env, &v) && v >= 0) {
        opts_.watchdog_seconds = v;
      } else {
        IMPACC_LOG_WARN(
            "IMPACC_WATCHDOG: malformed timeout \"%s\"; using the default "
            "%.0f s (set 0 to disable)",
            env, kDefaultWatchdogSeconds);
        opts_.watchdog_seconds = kDefaultWatchdogSeconds;
      }
    }
  }
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_shared<sim::TraceSink>();
  }
  if (opts_.critpath) {
    critpath_ = std::make_unique<obs::CritPath>();
  }
  // Observability comes up with tracing OR metrics export: spans need ids
  // even when only the trace is on, and the registry feeds both
  // LaunchResult::metrics and the metrics file. The critical-path profiler
  // needs it too, so its attribution gauges have somewhere to publish.
  if (trace_ != nullptr || !opts_.metrics_path.empty() ||
      critpath_ != nullptr) {
    obs_ = std::make_unique<obs::Observability>(
        obs::parse_metrics_spec(opts_.metrics_path));
  }
  log::set_context_provider(&log_context);
  build_topology();
  if (ft_ != nullptr) ft_->set_num_tasks(num_tasks());
}

Runtime::~Runtime() {
  // A fault-aborted run tears down with commands still queued and pairs
  // still pending in the matchers; reclaim them so recovery reruns (and
  // LeakSanitizer) see a clean heap. After a normal run both drains are
  // no-ops.
  for (auto& n : nodes_) {
    while (MpscNode* raw = n->queue.pop()) {
      delete static_cast<MsgCommand*>(raw);
    }
    n->matcher.drain_all();
  }
}

void Runtime::build_topology() {
  const sim::ClusterDesc& cluster = opts_.cluster;
  const bool functional = opts_.mode == ExecMode::kFunctional;

  nodes_.reserve(static_cast<std::size_t>(cluster.num_nodes()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    nodes_.push_back(std::make_unique<NodeRt>(
        this, n, &cluster.nodes[static_cast<std::size_t>(n)],
        opts_.node_heap_bytes, functional));
  }

  std::vector<Placement> placements =
      map_tasks(cluster, opts_.device_type_mask);
  IMPACC_CHECK_MSG(!placements.empty(),
                   "device-type mask selects no accelerators");
  if (ft_ != nullptr && ft_->num_excluded() > 0) {
    // Shrinking recovery (DESIGN.md section 12): tasks whose node or
    // device died are re-admitted round-robin onto surviving hosts;
    // ranks and surviving placements are untouched.
    DeadResources dead;
    for (const auto& [node, local] : ft_->exclusions()) {
      if (local < 0) {
        dead.nodes.push_back(node);
      } else {
        dead.slots.emplace_back(node, local);
      }
    }
    placements = remap_tasks(std::move(placements), dead);
  }

  const bool numa = opts_.features.numa_pinning &&
                    opts_.framework == Framework::kImpacc;

  std::vector<int> world_members;
  world_members.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& p = placements[i];
    NodeRt& node = *nodes_[static_cast<std::size_t>(p.node)];
    auto device = std::make_unique<dev::Device>(
        p.device, p.node, p.local_index, static_cast<int>(i), functional);

    auto task = std::make_unique<Task>();
    task->rt = this;
    task->node = &node;
    task->id = static_cast<int>(i);
    task->local_index = p.local_index;
    task->device = device.get();
    task->pinned_socket =
        choose_socket(*node.desc, p.device, numa, p.local_index);
    task->near = socket_is_near(*node.desc, p.device, task->pinned_socket);
    if (ft_ != nullptr && ft_->recovering()) {
      // Recovery rerun: tasks restart at the modeled restart time with
      // their epoch already at the committed checkpoint, so sends issued
      // before any new checkpoint carry sent_epoch == restore_epoch and
      // are correctly pruned (not double-replayed) by a later fault.
      task->clock.reset(ft_->restart_base());
      task->ft_epoch.store(ft_->restore_epoch(), std::memory_order_relaxed);
    }

    node.uvas.register_device(device.get());
    node.devices.push_back(std::move(device));
    node.tasks.push_back(task.get());
    tasks_.push_back(std::move(task));
    world_members.push_back(static_cast<int>(i));
  }

  world_ = adopt_comm(std::make_unique<mpi::Communicator>(
      next_context_id(), std::move(world_members)));
}

mpi::Comm Runtime::adopt_comm(std::unique_ptr<mpi::Communicator> c) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  comms_.push_back(std::move(c));
  return comms_.back().get();
}

int Runtime::agree_context(int parent_context, int creation_seq) {
  std::lock_guard<std::mutex> lock(comms_mutex_);
  auto [it, inserted] = agreed_contexts_.try_emplace(
      std::make_pair(parent_context, creation_seq), 0);
  if (inserted) it->second = next_context_.fetch_add(1);
  return it->second;
}

bool Runtime::rdma_enabled() const {
  return opts_.cluster.fabric.gpudirect_rdma && opts_.features.gpudirect_rdma &&
         opts_.framework == Framework::kImpacc;
}

void Runtime::run(const std::function<void()>& task_main) {
  tasks_remaining_.store(num_tasks(), std::memory_order_relaxed);

  if (opts_.watchdog_seconds > 0) {
    watchdog_stop_.store(false, std::memory_order_release);
    watchdog_ = std::thread([this] { watchdog_main(); });
  }

  if (obs_ != nullptr) {
    // Ready-fiber sampler: every push feeds the ult.sched.ready_fibers
    // histogram; with tracing on, a throttled counter track is emitted on
    // its own pid (num_nodes()). Scheduling is an OS-level activity, so
    // this one track is wall-clock microseconds, not virtual time — the
    // row is labeled accordingly.
    const auto t0 = std::chrono::steady_clock::now();
    auto last_emit_us = std::make_shared<std::atomic<long long>>(-1000000);
    sched_.set_ready_sampler([this, t0, last_emit_us](std::size_t depth) {
      obs_->ready_fibers->record(static_cast<double>(depth));
      if (trace_ == nullptr) return;
      const long long us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count();
      long long prev = last_emit_us->load(std::memory_order_relaxed);
      if (us - prev < 200) return;  // throttle: ≥200 µs between samples
      if (!last_emit_us->compare_exchange_strong(prev, us,
                                                 std::memory_order_relaxed)) {
        return;
      }
      trace_->record_counter(num_nodes(), "ready fibers (wall clock)",
                             "fibers", static_cast<double>(us) * 1e-6,
                             static_cast<double>(depth));
    });
  }

  if (ft_ != nullptr && ft_->recovering()) {
    // Re-inject the retained in-flight messages (DESIGN.md section 12):
    // everything sent before the restore epoch and not consumed before it
    // was on the wire across the cut. Senders resuming from the restored
    // epoch will not re-issue these, so the log is their only source.
    // They arrive as completed incoming messages on the destination
    // task's *current* (post-remap) node at the modeled restart time.
    for (const RetainedMsg& r : ft_->replay_set()) {
      auto* cmd = new MsgCommand;
      cmd->kind = MsgCommand::Kind::kIncoming;
      cmd->context_id = r.context_id;
      cmd->tag = r.tag;
      cmd->src_task = r.src_task;
      cmd->dst_task = r.dst_task;
      cmd->src_comm_rank = r.src_comm_rank;
      cmd->bytes = r.bytes;
      cmd->eager_payload = r.payload;
      cmd->sender_completed = true;  // the original sender already finished
      cmd->owner_task = r.src_task;
      cmd->ready = ft_->restart_base();
      cmd->arrival = ft_->restart_base();
      cmd->ft_id = r.id;  // keeps consumption tracking; blocks re-retention
      task(r.dst_task).node->post(cmd);
    }
  }

  for (auto& node : nodes_) {
    NodeRt* n = node.get();
    n->handler = sched_.spawn([n] { handler_main(n); },
                              "handler-" + std::to_string(n->index));
  }

  for (auto& task : tasks_) {
    Task* t = task.get();
    t->fiber = sched_.spawn(
        [this, t, &task_main] {
          ult::Scheduler::current()->set_user_data(t);
          try {
            task_main();
          } catch (const FaultAbort&) {
            // The injected fault unwound this task; the launch layer
            // rolls every task back, so nothing to salvage here — but
            // the shutdown accounting below must still run or the
            // handlers (and sched_.wait_all) never finish.
          }
          if (tasks_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            for (auto& node : nodes_) {
              node->shutdown.store(true, std::memory_order_release);
              node->wake.set();
            }
          }
        },
        "task-" + std::to_string(t->id));
  }

  sched_.wait_all();
  if (watchdog_.joinable()) {
    watchdog_stop_.store(true, std::memory_order_release);
    watchdog_.join();
  }
  if (obs_ != nullptr) sched_.set_ready_sampler({});
}

void Runtime::wake_all_handlers() {
  for (auto& n : nodes_) n->wake.set();
}

std::size_t Runtime::stray_messages(std::string* report) {
  std::size_t total = 0;
  std::string out;
  for (auto& n : nodes_) {
    const std::size_t pending = n->matcher.pending();
    const int queued = n->queue_depth.load(std::memory_order_acquire);
    const std::size_t node_total =
        pending + static_cast<std::size_t>(queued > 0 ? queued : 0);
    if (node_total == 0) continue;
    total += node_total;
    out += "node " + std::to_string(n->index) + ": " +
           std::to_string(pending) + " pending in matcher, " +
           std::to_string(queued) + " undrained command(s)\n";
    out += n->matcher.debug_dump();
  }
  if (report != nullptr) *report = std::move(out);
  return total;
}

void Runtime::watchdog_main() {
  // Progress = fibers becoming runnable. A waitany/test poll loop keeps
  // yielding (and so keeps the counter moving); a true deadlock — nothing
  // runnable, every task parked — freezes it. The one blind spot is a
  // single functional kernel body grinding for longer than the limit
  // without yielding; pick the limit accordingly.
  const double limit = opts_.watchdog_seconds;
  std::uint64_t last_events = sched_.ready_events();
  auto last_progress = std::chrono::steady_clock::now();
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t events = sched_.ready_events();
    if (events != last_events) {
      last_events = events;
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    if (tasks_remaining_.load(std::memory_order_acquire) <= 0) continue;
    const double idle = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - last_progress)
                            .count();
    if (idle < limit) continue;
    dump_hang_diagnostics(idle);
    std::fflush(stderr);
    // The run cannot make progress; tear the process down with the
    // distinct watchdog code (no atexit/destructors — fibers are parked).
    std::_Exit(kWatchdogExitCode);
  }
}

void Runtime::dump_hang_diagnostics(double idle_seconds) {
  std::fprintf(stderr,
               "[impacc watchdog] no scheduler progress for %.2f s with %d "
               "task(s) unfinished; dumping state\n",
               idle_seconds,
               tasks_remaining_.load(std::memory_order_relaxed));
  std::string blocked_ids;
  for (const auto& t : tasks_) {
    t->wd_lock.lock();
    const char* site = t->wd_site;
    const int context = t->wd_context;
    const int peer = t->wd_peer;
    const int tag = t->wd_tag;
    const std::uint64_t bytes = t->wd_bytes;
    t->wd_lock.unlock();
    if (site != nullptr) {
      std::fprintf(stderr,
                   "  task %d (node %d, clock %.6f ms): blocked in %s "
                   "(context=%d peer=%d tag=%d bytes=%llu)\n",
                   t->id, t->node->index, sim::to_ms(t->clock.now()), site,
                   context, peer, tag,
                   static_cast<unsigned long long>(bytes));
      if (!blocked_ids.empty()) blocked_ids += ' ';
      blocked_ids += std::to_string(t->id);
    } else {
      std::fprintf(stderr,
                   "  task %d (node %d, clock %.6f ms): no registered wait "
                   "site\n",
                   t->id, t->node->index, sim::to_ms(t->clock.now()));
    }
  }
  for (const auto& n : nodes_) {
    std::fprintf(stderr, "  node %d: handler queue depth=%d\n", n->index,
                 n->queue_depth.load(std::memory_order_relaxed));
    // The handler fiber is parked (no progress), so reading the matcher
    // and the streams is quiescent here.
    const std::string matcher = n->matcher.debug_dump();
    std::fprintf(stderr, "%s", matcher.c_str());
    for (const auto& d : n->devices) {
      for (const auto& s : d->streams()) {
        std::fprintf(stderr, "    %s\n", s->debug_state().c_str());
      }
    }
  }
  std::string blocked = "blocked tasks:";
  if (!blocked_ids.empty()) blocked += " " + blocked_ids;
  std::fprintf(stderr, "%s\n", blocked.c_str());
}

void Runtime::publish_run_metrics(const TaskStats& total, sim::Time makespan,
                                  obs::MetricsSnapshot* out) {
  if (critpath_ != nullptr) publish_critpath(makespan);
  if (obs_ == nullptr) return;
  obs::Registry& reg = obs_->registry();

  // Run shape.
  reg.gauge("core.makespan_seconds")->set(makespan);
  reg.gauge("core.num_tasks")->set(num_tasks());
  reg.gauge("core.num_nodes")->set(num_nodes());
  for (const auto& n : nodes_) {
    reg.gauge("core.node" + std::to_string(n->index) + ".handler_socket")
        ->set(n->handler_socket);
  }
  if (trace_ != nullptr) {
    // Label the pid rows: node index + where its handler thread is pinned,
    // plus the wall-clock scheduler row.
    for (const auto& n : nodes_) {
      trace_->record_meta(n->index, "process_name",
                          "node" + std::to_string(n->index) +
                              " (handler socket " +
                              std::to_string(n->handler_socket) + ")");
    }
    trace_->record_meta(num_nodes(), "process_name",
                        "scheduler (wall clock)");
  }

  // TaskStats totals. The copy/wait *model* gauges mirror what the live
  // dev.copy.*/mpi.wait histograms accumulated — equal by construction
  // (every accounting site goes through account_copy / the wait site), and
  // asserted by tests and tools/impacc-smoke.
  reg.gauge("mpi.msgs_sent")->set(static_cast<double>(total.msgs_sent));
  reg.gauge("mpi.msgs_recv")->set(static_cast<double>(total.msgs_recv));
  reg.gauge("mpi.bytes_sent")->set(static_cast<double>(total.bytes_sent));
  reg.gauge("mpi.chunked_msgs")->set(static_cast<double>(total.chunked_msgs));
  reg.gauge("mpi.wait.model_seconds")->set(total.mpi_wait);
  reg.gauge("acc.kernel.model_seconds")->set(total.kernel_busy);
  reg.gauge("core.heap_aliases")->set(static_cast<double>(total.heap_aliases));
  for (int i = 0; i < 6; ++i) {
    const std::string prefix =
        std::string("dev.copy.") +
        dev::copy_path_slug(static_cast<dev::CopyPathKind>(i));
    reg.gauge(prefix + ".model_seconds")
        ->set(total.copy_time[static_cast<std::size_t>(i)]);
    reg.gauge(prefix + ".model_count")
        ->set(static_cast<double>(
            total.copy_count[static_cast<std::size_t>(i)]));
  }

  // Present-table memo caches, summed over tasks (acc.present_table.*).
  acc::PresentTable::CacheStats cache;
  for (const auto& t : tasks_) {
    const acc::PresentTable::CacheStats& cs = t->present.cache_stats();
    cache.host_hits += cs.host_hits;
    cache.host_misses += cs.host_misses;
    cache.dev_hits += cs.dev_hits;
    cache.dev_misses += cs.dev_misses;
    cache.invalidations += cs.invalidations;
  }
  reg.gauge("acc.present_table.host_hits")
      ->set(static_cast<double>(cache.host_hits));
  reg.gauge("acc.present_table.host_misses")
      ->set(static_cast<double>(cache.host_misses));
  reg.gauge("acc.present_table.dev_hits")
      ->set(static_cast<double>(cache.dev_hits));
  reg.gauge("acc.present_table.dev_misses")
      ->set(static_cast<double>(cache.dev_misses));
  reg.gauge("acc.present_table.invalidations")
      ->set(static_cast<double>(cache.invalidations));

  // Pinned staging pools and matchers, summed over nodes.
  PinnedPool::Stats pool;
  mpi::Matcher::Stats match;
  for (const auto& n : nodes_) {
    const PinnedPool::Stats ps = n->pinned.stats();
    pool.acquires += ps.acquires;
    pool.hits += ps.hits;
    pool.buffers_created += ps.buffers_created;
    pool.bytes_allocated += ps.bytes_allocated;
    pool.bytes_retained += ps.bytes_retained;
    pool.oversize_rejects += ps.oversize_rejects;
    pool.trims += ps.trims;
    pool.bytes_trimmed += ps.bytes_trimmed;
    pool.bytes_in_use += ps.bytes_in_use;
    pool.bytes_in_use_peak =
        std::max(pool.bytes_in_use_peak, ps.bytes_in_use_peak);
    const mpi::Matcher::Stats& ms = n->matcher.stats();
    match.matched += ms.matched;
    match.unexpected_queued += ms.unexpected_queued;
    match.recvs_queued += ms.recvs_queued;
    match.probes_parked += ms.probes_parked;
    match.fastpath_hits += ms.fastpath_hits;
  }
  reg.gauge("core.pinned_pool.acquires")
      ->set(static_cast<double>(pool.acquires));
  reg.gauge("core.pinned_pool.hits")->set(static_cast<double>(pool.hits));
  reg.gauge("core.pinned_pool.buffers_created")
      ->set(static_cast<double>(pool.buffers_created));
  reg.gauge("core.pinned_pool.bytes_allocated")
      ->set(static_cast<double>(pool.bytes_allocated));
  reg.gauge("core.pinned_pool.bytes_retained")
      ->set(static_cast<double>(pool.bytes_retained));
  reg.gauge("core.pinned_pool.oversize_rejects")
      ->set(static_cast<double>(pool.oversize_rejects));
  reg.gauge("core.pinned_pool.trims")->set(static_cast<double>(pool.trims));
  reg.gauge("core.pinned_pool.bytes_trimmed")
      ->set(static_cast<double>(pool.bytes_trimmed));
  reg.gauge("core.pinned_pool.bytes_in_use_peak")
      ->set(static_cast<double>(pool.bytes_in_use_peak));
  reg.gauge("mpi.matcher.matched")->set(static_cast<double>(match.matched));
  reg.gauge("mpi.matcher.unexpected_queued")
      ->set(static_cast<double>(match.unexpected_queued));
  reg.gauge("mpi.matcher.recvs_queued")
      ->set(static_cast<double>(match.recvs_queued));
  reg.gauge("mpi.matcher.probes_parked")
      ->set(static_cast<double>(match.probes_parked));
  reg.gauge("mpi.matcher.fastpath_hits")
      ->set(static_cast<double>(match.fastpath_hits));

  // Fault tolerance (docs/OBSERVABILITY.md ft.* catalog). Published only
  // when a fault plan is armed; counters accumulate across recovery
  // reruns because the FtState outlives each Runtime.
  if (ft_ != nullptr) {
    const FtCounters& c = ft_->counters;
    reg.gauge("ft.faults")->set(static_cast<double>(c.faults));
    reg.gauge("ft.recoveries")->set(static_cast<double>(c.recoveries));
    reg.gauge("ft.checkpoints")->set(static_cast<double>(c.checkpoints));
    reg.gauge("ft.checkpoint_bytes")
        ->set(static_cast<double>(c.checkpoint_bytes));
    reg.gauge("ft.retained_msgs")->set(static_cast<double>(c.retained_msgs));
    reg.gauge("ft.retained_bytes")->set(static_cast<double>(c.retained_bytes));
    reg.gauge("ft.replayed_msgs")->set(static_cast<double>(c.replayed_msgs));
    reg.gauge("ft.pruned_msgs")->set(static_cast<double>(c.pruned_msgs));
    reg.gauge("ft.lost_seconds")->set(c.lost_seconds);
    reg.gauge("ft.recovery_seconds")->set(c.recovery_seconds);
    if (trace_ != nullptr) {
      // Recovery spans: one slice per restart on the failed node's pid,
      // covering [fault, modeled restart] of the rerun's timeline.
      for (const auto& r : ft_->recovery_log()) {
        std::string name = "recovery (node " + std::to_string(r.node);
        if (r.device >= 0) name += "." + std::to_string(r.device);
        name += ")";
        trace_->record(r.node, "ft", name, "recovery", r.fault_time,
                       r.restart);
      }
    }
  }

  // Scheduler.
  reg.gauge("ult.sched.workers")->set(sched_.num_workers());
  reg.gauge("ult.sched.fibers_spawned")
      ->set(static_cast<double>(sched_.fibers_spawned()));
  reg.gauge("ult.sched.fibers_finished")
      ->set(static_cast<double>(sched_.fibers_finished()));

  obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsConfig& cfg = obs_->config();
  if (!cfg.path.empty() && cfg.path != "-") {
    if (!snap.write_file(cfg.path, cfg.format)) {
      IMPACC_LOG_WARN("could not write metrics to %s", cfg.path.c_str());
    }
  }
  if (out != nullptr) *out = std::move(snap);
}

void Runtime::publish_critpath(sim::Time makespan) {
  obs::CritPath* cp = critpath_.get();

  // Close every task's final compute segment so each dependency chain
  // reaches the end of the run; the last-finishing task's segment is the
  // backward walk's end node (its end == makespan by definition).
  Task* last = nullptr;
  for (const auto& t : tasks_) {
    if (last == nullptr || t->clock.now() > last->clock.now()) last = t.get();
  }
  std::uint32_t end_node = 0;
  for (const auto& t : tasks_) {
    const std::uint32_t id = cp_checkpoint(*t, cp);
    if (t.get() == last) end_node = id;
  }

  // The slice list only feeds the trace overlay and the report's top-N
  // table; gauge-only runs can skip collecting it.
  const bool want_path = trace_ != nullptr || !opts_.prof_report_path.empty();
  const obs::CritPath::Report rep = cp->analyze(makespan, end_node, want_path);

  if (obs_ != nullptr) {
    obs::Registry& reg = obs_->registry();
    for (int c = 0; c < obs::kCritCategoryCount; ++c) {
      const std::string prefix =
          std::string("critpath.") +
          obs::crit_category_slug(static_cast<obs::CritCategory>(c));
      reg.gauge(prefix + ".seconds")->set(rep.seconds[c]);
      reg.gauge(prefix + ".fraction")
          ->set(makespan > 0 ? rep.seconds[c] / makespan : 0);
    }
  }

  if (trace_ != nullptr) {
    // Overlay the on-path slices on their own pid so Perfetto highlights
    // the path without disturbing the per-node rows (whose categories the
    // smoke tool asserts on).
    const int pid = num_nodes() + 1;
    trace_->record_meta(pid, "process_name", "critical path");
    for (const auto& s : rep.path) {
      if (s.attributed <= 0 || s.end <= s.start) continue;
      trace_->record(
          pid, "critical path",
          s.label.empty() ? obs::crit_category_slug(s.cat) : s.label,
          "critpath", s.start, s.end);
    }
  }

  if (!opts_.prof_report_path.empty()) {
    const std::string report = cp->format_report(rep);
    if (opts_.prof_report_path == "-") {
      std::fputs(report.c_str(), stderr);
    } else {
      std::FILE* f = std::fopen(opts_.prof_report_path.c_str(), "w");
      if (f == nullptr ||
          std::fwrite(report.data(), 1, report.size(), f) != report.size()) {
        IMPACC_LOG_WARN("could not write profile report to %s",
                        opts_.prof_report_path.c_str());
      }
      if (f != nullptr) std::fclose(f);
    }
  }
  if (!opts_.critpath_graph_path.empty() &&
      opts_.critpath_graph_path != "-") {
    if (!cp->save_graph(opts_.critpath_graph_path, makespan, end_node)) {
      IMPACC_LOG_WARN("could not write critpath graph to %s",
                      opts_.critpath_graph_path.c_str());
    }
  }
}

}  // namespace impacc::core
