#include "core/config.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace impacc::core {

const char* framework_name(Framework f) {
  switch (f) {
    case Framework::kImpacc: return "IMPACC";
    case Framework::kMpiOpenacc: return "MPI+OpenACC";
  }
  return "?";
}

unsigned parse_device_type_mask(const std::string& spec) {
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t bar = spec.find('|', pos);
    if (bar == std::string::npos) bar = spec.size();
    const std::string tok = spec.substr(pos, bar - pos);
    if (tok == "nvidia" || tok == "acc_device_nvidia") {
      mask |= kAccDeviceNvidia;
    } else if (tok == "xeonphi" || tok == "acc_device_xeonphi") {
      mask |= kAccDeviceXeonPhi;
    } else if (tok == "cpu" || tok == "acc_device_cpu") {
      mask |= kAccDeviceCpu;
    } else if (tok == "default" || tok == "acc_device_default" ||
               tok.empty()) {
      // default contributes no bits; an all-zero mask means default
    }
    pos = bar + 1;
  }
  return mask;
}

std::uint64_t parse_size_bytes(const std::string& spec) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  while (pos < spec.size() && spec[pos] >= '0' && spec[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(spec[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;  // no digits
  std::uint64_t scale = 1;
  if (pos < spec.size()) {
    switch (spec[pos]) {
      case 'k': case 'K': scale = 1ull << 10; ++pos; break;
      case 'm': case 'M': scale = 1ull << 20; ++pos; break;
      case 'g': case 'G': scale = 1ull << 30; ++pos; break;
      default: return 0;
    }
    // Tolerate a trailing B/iB ("1MiB", "256KB").
    if (pos < spec.size() && (spec[pos] == 'i' || spec[pos] == 'I')) ++pos;
    if (pos < spec.size() && (spec[pos] == 'b' || spec[pos] == 'B')) ++pos;
  }
  if (pos != spec.size()) return 0;
  return value * scale;
}

bool parse_env_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;  // "nan"/"inf" parse but mean nothing
  *out = v;
  return true;
}

bool parse_env_int(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_env_bool(const std::string& s, bool* out) {
  std::string low;
  low.reserve(s.size());
  for (char c : s) {
    low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (low == "1" || low == "on" || low == "true" || low == "yes") {
    *out = true;
    return true;
  }
  if (low == "0" || low == "off" || low == "false" || low == "no") {
    *out = false;
    return true;
  }
  return false;
}

// Guard against fields added to TaskStats without extending operator+=,
// the metrics publisher (Runtime::publish_run_metrics), and the field-sum
// test in tests/obs_test.cpp. 21 8-byte fields, no padding.
static_assert(sizeof(TaskStats) == 168,
              "TaskStats layout changed: update operator+= (every field!), "
              "Runtime::publish_run_metrics, tests/obs_test.cpp, then this "
              "assert");

TaskStats& TaskStats::operator+=(const TaskStats& o) {
  kernel_busy += o.kernel_busy;
  for (std::size_t i = 0; i < copy_time.size(); ++i) {
    copy_time[i] += o.copy_time[i];
    copy_count[i] += o.copy_count[i];
  }
  mpi_wait += o.mpi_wait;
  msgs_sent += o.msgs_sent;
  msgs_recv += o.msgs_recv;
  bytes_sent += o.bytes_sent;
  heap_aliases += o.heap_aliases;
  chunked_msgs += o.chunked_msgs;
  present_cache_hits += o.present_cache_hits;
  present_cache_misses += o.present_cache_misses;
  return *this;
}

}  // namespace impacc::core
