// Per-task runtime context.
//
// One Task per selected accelerator (section 3.2); each runs as a fiber
// and carries its own virtual clock, present table, pending IMPACC
// directive, and statistics. The task's pinning relative to its device
// drives the near/far transfer costs.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "acc/present_table.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/directives.h"
#include "dev/device.h"
#include "sim/vclock.h"
#include "ult/fiber.h"
#include "ult/sync.h"

namespace impacc::core {

class Runtime;
struct NodeRt;

struct Task {
  Runtime* rt = nullptr;
  NodeRt* node = nullptr;
  int id = 0;           // global rank (MPI_COMM_WORLD rank)
  int local_index = 0;  // index within the node
  dev::Device* device = nullptr;
  int pinned_socket = 0;
  bool near = true;  // pinned near its device?

  sim::VirtualClock clock;
  acc::PresentTable present;
  MpiHint hint;  // pending #pragma acc mpi for the next MPI call
  TaskStats stats;
  // Guards `stats`: the node's handler fiber accounts copies and receive
  // completions on the *receiving* task while that task's own fiber may
  // be accounting its own transfers — two scheduler workers, same
  // counters. Every mutation site takes this; the post-run aggregation
  // reads after wait_all() and needs no lock.
  std::mutex stats_mutex;
  ult::Fiber* fiber = nullptr;

  // Per-communicator collective sequence numbers (internal tag space).
  std::unordered_map<int, int> collective_seq;
  // Per-communicator count of communicator-creation calls (context
  // agreement; see Runtime::agree_context).
  std::unordered_map<int, int> comm_create_seq;

  // Critical-path chain (src/obs/critpath.h); only touched by the task's
  // own fiber (plus the publish pass after wait_all), and only when the
  // profiler is on. `cp_open` is the virtual start of the currently open
  // compute segment, `cp_last` the id of the last closed node.
  sim::Time cp_open = 0;
  std::uint32_t cp_last = 0;

  // Fault-tolerance state (core/checkpoint.h); only meaningful when the
  // launch has a fault plan armed. `ft_epoch` is the task's checkpoint
  // epoch: bumped by ft_checkpoint before the barrier, read (relaxed) by
  // the node handler fiber to stamp send/consume epochs into the
  // retention log. `ft_regions` is the app-registered restartable state.
  std::atomic<int> ft_epoch{0};
  std::vector<FtRegion> ft_regions;

  // Hang-watchdog wait-site registration: set while the task fiber is
  // blocked in an MPI completion wait, read by the watchdog thread.
  // Registered only when the watchdog is enabled (no cost otherwise).
  ult::SpinLock wd_lock;
  const char* wd_site = nullptr;  // static string, e.g. "mpi::wait"
  int wd_context = 0;
  int wd_peer = 0;
  int wd_tag = 0;
  std::uint64_t wd_bytes = 0;

  /// Consume (and clear) the pending directive hint.
  MpiHint take_hint() {
    MpiHint h = hint;
    hint = MpiHint{};
    return h;
  }

  bool functional() const;
  const sim::NodeDesc& node_desc() const;
  const sim::RuntimeCosts& costs() const;
};

/// Task bound to the calling fiber (nullptr outside task fibers).
Task* current_task();

/// As above, but aborts with a clear message when absent. All public API
/// entry points use this.
Task& require_task(const char* api_name);

}  // namespace impacc::core
