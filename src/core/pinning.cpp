#include "core/pinning.h"

#include <cstdio>

#include "common/types.h"

namespace impacc::core {

std::vector<std::string> sysfs_pci_affinity(const sim::NodeDesc& node) {
  std::vector<std::string> lines;
  lines.reserve(node.devices.size());
  for (std::size_t i = 0; i < node.devices.size(); ++i) {
    const auto& d = node.devices[i];
    char buf[96];
    // Synthetic bus numbers: devices of socket s live on bus 0x03 + s*0x40,
    // mirroring how multi-socket machines segment their PCIe hierarchy.
    std::snprintf(buf, sizeof(buf), "0000:%02x:%02zx cpulistaffinity %d",
                  3 + d.socket * 0x40, i, d.socket);
    lines.emplace_back(buf);
  }
  return lines;
}

int choose_socket(const sim::NodeDesc& node, const sim::DeviceDesc& dev,
                  bool numa_friendly, int task_local_index) {
  if (node.sockets <= 1) return 0;
  if (numa_friendly) {
    // Parse the device's socket back out of the sysfs table, as the real
    // runtime would.
    const auto lines = sysfs_pci_affinity(node);
    for (const auto& line : lines) {
      const std::size_t pos = line.rfind(' ');
      IMPACC_CHECK(pos != std::string::npos);
      // The line order matches node.devices order; match by socket field.
      // (All devices of a socket report the same affinity, so matching the
      // desired device's socket is sufficient.)
      const int socket = std::atoi(line.c_str() + pos + 1);
      if (socket == dev.socket) return socket;
    }
    return dev.socket;
  }
  return task_local_index % node.sockets;
}

bool socket_is_near(const sim::NodeDesc& node, const sim::DeviceDesc& dev,
                    int socket) {
  if (node.sockets <= 1) return true;
  if (dev.backend == sim::BackendKind::kHostShared) return true;
  return socket == dev.socket;
}

int choose_handler_socket(const sim::NodeDesc& node) {
  if (node.sockets <= 1 || node.devices.empty()) return 0;
  std::vector<int> devs_on(static_cast<std::size_t>(node.sockets), 0);
  for (const auto& d : node.devices) {
    if (d.socket >= 0 && d.socket < node.sockets) {
      ++devs_on[static_cast<std::size_t>(d.socket)];
    }
  }
  int best = 0;
  for (int s = 1; s < node.sockets; ++s) {
    if (devs_on[static_cast<std::size_t>(s)] >
        devs_on[static_cast<std::size_t>(best)]) {
      best = s;
    }
  }
  return best;
}

}  // namespace impacc::core
