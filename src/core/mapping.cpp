#include "core/mapping.h"

#include <algorithm>

#include "common/types.h"
#include "sim/systems.h"

namespace impacc::core {

namespace {

bool kind_selected(sim::DeviceKind kind, unsigned mask) {
  switch (kind) {
    case sim::DeviceKind::kNvidiaGpu: return (mask & kAccDeviceNvidia) != 0;
    case sim::DeviceKind::kXeonPhi: return (mask & kAccDeviceXeonPhi) != 0;
    case sim::DeviceKind::kCpu: return (mask & kAccDeviceCpu) != 0;
  }
  return false;
}

}  // namespace

std::vector<Placement> map_tasks(const sim::ClusterDesc& cluster,
                                 unsigned mask) {
  std::vector<Placement> out;
  const bool use_default = mask == kAccDeviceDefault;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const sim::NodeDesc& node = cluster.nodes[static_cast<std::size_t>(n)];
    int local = 0;
    bool any_discrete = false;
    bool any_explicit_cpu = false;
    for (const auto& dev : node.devices) {
      const bool discrete = dev.kind != sim::DeviceKind::kCpu;
      const bool take = use_default ? discrete : kind_selected(dev.kind, mask);
      if (!discrete) any_explicit_cpu = true;
      if (!take) continue;
      any_discrete = any_discrete || discrete;
      out.push_back(Placement{n, dev, local++, false});
    }
    // CPU-cores accelerators: explicitly requested, or the default-mask
    // fallback for accelerator-less nodes (Fig. 2 (a), Node 2). Nodes that
    // declare explicit CPU devices keep those; otherwise one accelerator
    // per socket is synthesized.
    const bool want_cpu =
        (mask & kAccDeviceCpu) != 0 || (use_default && !any_discrete);
    if (want_cpu) {
      if (any_explicit_cpu) {
        if (use_default) {
          // Explicit CPU devices were skipped by the discrete-only default
          // rule above; adopt them now as the fallback.
          for (const auto& dev : node.devices) {
            if (dev.kind != sim::DeviceKind::kCpu) continue;
            out.push_back(Placement{n, dev, local++, false});
          }
        }
      } else {
        for (int s = 0; s < node.sockets; ++s) {
          Placement p;
          p.node = n;
          p.device = sim::make_cpu_device(s, node.cores_per_socket, 2.4);
          p.local_index = local++;
          p.synthesized_cpu = true;
          out.push_back(p);
        }
      }
    }
  }
  return out;
}

bool DeadResources::node_dead(int node) const {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

bool DeadResources::slot_dead(int node, int local_index) const {
  if (node_dead(node)) return true;
  return std::find(slots.begin(), slots.end(),
                   std::make_pair(node, local_index)) != slots.end();
}

std::vector<Placement> remap_tasks(std::vector<Placement> placements,
                                   const DeadResources& dead) {
  // Surviving placements keep node, device, and local_index; collect them
  // as the round-robin re-admission targets (rank order, so the choice is
  // deterministic).
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (!dead.slot_dead(placements[i].node, placements[i].local_index)) {
      survivors.push_back(i);
    }
  }
  IMPACC_CHECK_MSG(!survivors.empty(),
                   "fault recovery: no surviving accelerators to host tasks");
  // Fresh local indices start after each node's current maximum so the
  // original slot identities stay stable for later fault targeting.
  std::vector<std::pair<int, int>> next_local;  // (node, next index)
  auto next_index = [&](int node) -> int {
    for (auto& [n, next] : next_local) {
      if (n == node) return next++;
    }
    int max_local = -1;
    for (const Placement& p : placements) {
      if (p.node == node) max_local = std::max(max_local, p.local_index);
    }
    next_local.emplace_back(node, max_local + 2);
    return max_local + 1;
  };
  std::size_t rr = 0;
  for (Placement& p : placements) {
    if (!dead.slot_dead(p.node, p.local_index)) continue;
    const Placement& host = placements[survivors[rr++ % survivors.size()]];
    p.node = host.node;
    p.device = host.device;
    p.synthesized_cpu = host.synthesized_cpu;
    p.local_index = next_index(host.node);
  }
  return placements;
}

}  // namespace impacc::core
