#include "core/mapping.h"

#include "sim/systems.h"

namespace impacc::core {

namespace {

bool kind_selected(sim::DeviceKind kind, unsigned mask) {
  switch (kind) {
    case sim::DeviceKind::kNvidiaGpu: return (mask & kAccDeviceNvidia) != 0;
    case sim::DeviceKind::kXeonPhi: return (mask & kAccDeviceXeonPhi) != 0;
    case sim::DeviceKind::kCpu: return (mask & kAccDeviceCpu) != 0;
  }
  return false;
}

}  // namespace

std::vector<Placement> map_tasks(const sim::ClusterDesc& cluster,
                                 unsigned mask) {
  std::vector<Placement> out;
  const bool use_default = mask == kAccDeviceDefault;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const sim::NodeDesc& node = cluster.nodes[static_cast<std::size_t>(n)];
    int local = 0;
    bool any_discrete = false;
    bool any_explicit_cpu = false;
    for (const auto& dev : node.devices) {
      const bool discrete = dev.kind != sim::DeviceKind::kCpu;
      const bool take = use_default ? discrete : kind_selected(dev.kind, mask);
      if (!discrete) any_explicit_cpu = true;
      if (!take) continue;
      any_discrete = any_discrete || discrete;
      out.push_back(Placement{n, dev, local++, false});
    }
    // CPU-cores accelerators: explicitly requested, or the default-mask
    // fallback for accelerator-less nodes (Fig. 2 (a), Node 2). Nodes that
    // declare explicit CPU devices keep those; otherwise one accelerator
    // per socket is synthesized.
    const bool want_cpu =
        (mask & kAccDeviceCpu) != 0 || (use_default && !any_discrete);
    if (want_cpu) {
      if (any_explicit_cpu) {
        if (use_default) {
          // Explicit CPU devices were skipped by the discrete-only default
          // rule above; adopt them now as the fallback.
          for (const auto& dev : node.devices) {
            if (dev.kind != sim::DeviceKind::kCpu) continue;
            out.push_back(Placement{n, dev, local++, false});
          }
        }
      } else {
        for (int s = 0; s < node.sockets; ++s) {
          Placement p;
          p.node = n;
          p.device = sim::make_cpu_device(s, node.cores_per_socket, 2.4);
          p.local_index = local++;
          p.synthesized_cpu = true;
          out.push_back(p);
        }
      }
    }
  }
  return out;
}

}  // namespace impacc::core
