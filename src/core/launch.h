// Application entry point: impacc::launch().
//
// In the paper, users launch an MPI+OpenACC binary by giving IMPACC the
// node list; the runtime creates one task per selected accelerator and
// runs the same program in every task (SPMD). Here the "binary" is a
// callable executed by every task fiber.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "obs/metrics.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace impacc {

struct LaunchResult {
  sim::Time makespan = 0;  // max task virtual time (the run's duration)
  int num_tasks = 0;
  std::vector<sim::Time> task_times;           // per-task final clocks
  std::vector<core::TaskStats> task_stats;     // per-task accounting
  core::TaskStats total;                       // sum over tasks
  // Virtual-time execution trace (when tracing was enabled). Written to
  // LaunchOptions::trace_path as Chrome-trace JSON ("-" = keep in memory).
  std::shared_ptr<sim::TraceSink> trace;
  // Metrics snapshot (when observability was enabled; see
  // LaunchOptions::metrics_path and docs/OBSERVABILITY.md). Empty
  // otherwise. Also written to metrics_path unless that is "-".
  obs::MetricsSnapshot metrics;
  // Stray-message quiescence verifier (DESIGN.md section 12): pending
  // matcher entries + undrained handler commands after the (final) run.
  // 0 for every clean run; tests assert this at teardown.
  std::size_t stray_messages = 0;
  std::string stray_report;  // per-node matcher dumps when nonzero
  // Fault-tolerance counters (ft.* metrics catalog), accumulated across
  // all recovery reruns of this launch. All-zero when no plan was armed.
  core::FtCounters ft;
};

/// Run `task_main` under the given options and return timing/statistics.
/// Every task executes the same callable (SPMD); tasks query their rank
/// through mpi::comm_rank(mpi::world()).
LaunchResult launch(const core::LaunchOptions& options,
                    const std::function<void()>& task_main);

}  // namespace impacc
