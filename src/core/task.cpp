#include "core/task.h"

#include "core/runtime.h"
#include "ult/scheduler.h"

namespace impacc::core {

bool Task::functional() const { return rt->functional(); }

const sim::NodeDesc& Task::node_desc() const { return *node->desc; }

const sim::RuntimeCosts& Task::costs() const {
  return rt->options().cluster.costs;
}

Task* current_task() {
  ult::Fiber* f = ult::Scheduler::current();
  if (f == nullptr) return nullptr;
  return static_cast<Task*>(f->user_data());
}

Task& require_task(const char* api_name) {
  Task* t = current_task();
  IMPACC_CHECK_MSG(t != nullptr, api_name);
  return *t;
}

}  // namespace impacc::core
