// Automatic task-device mapping (section 3.2, Fig. 2).
//
// Users give IMPACC the node list, not the task count; the runtime creates
// one MPI task per selected accelerator, cluster-wide, and fixes the
// mapping for the application's lifetime. The device-type mask
// (IMPACC_ACC_DEVICE_TYPE) selects which accelerators participate.
#pragma once

#include <vector>

#include "core/config.h"
#include "sim/topology.h"

namespace impacc::core {

struct Placement {
  int node = 0;             // node index in the cluster
  sim::DeviceDesc device;   // the accelerator this task drives
  int local_index = 0;      // task index within the node
  bool synthesized_cpu = false;  // device is a CPU-cores accelerator the
                                 // mapper created (not in NodeDesc.devices)
};

/// Compute the cluster-wide task list for a device-type mask. Task ids
/// (ranks) are assigned in node order, then device order, exactly like
/// Fig. 2's numbering.
///
/// Mask semantics (Fig. 2 (a)-(e)):
///  - kAccDeviceDefault (0): every discrete accelerator; a node without
///    any gets one CPU-cores accelerator per socket so it still hosts
///    tasks.
///  - kAccDeviceNvidia / kAccDeviceXeonPhi (or both): accelerators of the
///    selected kinds only; nodes without a match get no tasks.
///  - kAccDeviceCpu: one CPU-cores accelerator per socket on every node;
///    may be combined with the discrete-device bits.
std::vector<Placement> map_tasks(const sim::ClusterDesc& cluster,
                                 unsigned mask);

/// Resources excluded by fault injection (DESIGN.md section 12).
struct DeadResources {
  std::vector<int> nodes;                       // whole dead nodes
  std::vector<std::pair<int, int>> slots;       // (node, local_index)
  bool node_dead(int node) const;
  bool slot_dead(int node, int local_index) const;
};

/// Shrinking recovery remap: placements on dead resources are re-admitted
/// round-robin onto the surviving hosts (sharing their accelerators);
/// surviving placements — and every rank — stay exactly where they were.
/// Re-admitted tasks get fresh local indices after the target node's
/// surviving ones, so a later fault still identifies original slots.
/// Aborts if nothing survives.
std::vector<Placement> remap_tasks(std::vector<Placement> placements,
                                   const DeadResources& dead);

}  // namespace impacc::core
