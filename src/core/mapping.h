// Automatic task-device mapping (section 3.2, Fig. 2).
//
// Users give IMPACC the node list, not the task count; the runtime creates
// one MPI task per selected accelerator, cluster-wide, and fixes the
// mapping for the application's lifetime. The device-type mask
// (IMPACC_ACC_DEVICE_TYPE) selects which accelerators participate.
#pragma once

#include <vector>

#include "core/config.h"
#include "sim/topology.h"

namespace impacc::core {

struct Placement {
  int node = 0;             // node index in the cluster
  sim::DeviceDesc device;   // the accelerator this task drives
  int local_index = 0;      // task index within the node
  bool synthesized_cpu = false;  // device is a CPU-cores accelerator the
                                 // mapper created (not in NodeDesc.devices)
};

/// Compute the cluster-wide task list for a device-type mask. Task ids
/// (ranks) are assigned in node order, then device order, exactly like
/// Fig. 2's numbering.
///
/// Mask semantics (Fig. 2 (a)-(e)):
///  - kAccDeviceDefault (0): every discrete accelerator; a node without
///    any gets one CPU-cores accelerator per socket so it still hosts
///    tasks.
///  - kAccDeviceNvidia / kAccDeviceXeonPhi (or both): accelerators of the
///    selected kinds only; nodes without a match get no tasks.
///  - kAccDeviceCpu: one CPU-cores accelerator per socket on every node;
///    may be combined with the discrete-device bits.
std::vector<Placement> map_tasks(const sim::ClusterDesc& cluster,
                                 unsigned mask);

}  // namespace impacc::core
