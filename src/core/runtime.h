// The IMPACC runtime: nodes, devices, tasks, handler fibers.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_queue.h"
#include "core/config.h"
#include "core/heap.h"
#include "core/message.h"
#include "core/pinned_pool.h"
#include "core/task.h"
#include "core/uvas.h"
#include "mpi/comm.h"
#include "mpi/matcher.h"
#include "obs/critpath.h"
#include "obs/obs.h"
#include "sim/trace.h"
#include "ult/scheduler.h"
#include "ult/sync.h"

namespace impacc::core {

/// Process exit code of the hang watchdog (IMPACC_WATCHDOG): distinct
/// from every IMPACC_CHECK abort and test-harness code, so a harness can
/// tell "diagnosed deadlock" apart from "crashed".
constexpr int kWatchdogExitCode = 86;

/// Per-node runtime state. The handler fiber is the paper's "message
/// handler thread": sole consumer of the node's in-order lock-free command
/// queue, matcher of message pairs, executor of activity queues.
struct NodeRt {
  NodeRt(Runtime* rt, int index, const sim::NodeDesc* desc,
         std::uint64_t heap_bytes, bool functional);

  Runtime* rt;
  int index;
  const sim::NodeDesc* desc;

  // Socket the node's message-handler thread is pinned on (CPUMap-style:
  // next to the node's devices; see choose_handler_socket). Published as
  // the core.node<i>.handler_socket gauge and as trace metadata.
  int handler_socket = 0;

  // Last critical-path node of the serialized-MPI lock timeline (the
  // per-node MPI lock that internode sends hold; section 3.7). Purely
  // observational — a racy read only mis-attributes a wait, never breaks
  // the Σ == makespan invariant.
  std::atomic<std::uint32_t> cp_mpi_lock{0};

  std::vector<std::unique_ptr<dev::Device>> devices;
  std::vector<Task*> tasks;
  NodeHeap heap;
  Uvas uvas;
  PinnedPool pinned;  // staging buffers for internode device transfers

  // Command queue (multi-producer: task fibers + remote handlers;
  // single consumer: this node's handler fiber).
  MpscQueue queue;
  ult::FiberEvent wake;
  mpi::Matcher matcher;

  // Streams with runnable work, scheduled by enqueue/complete.
  ult::SpinLock astream_lock;
  std::deque<dev::Stream*> active_streams;

  // NIC timeline: internode messages serialize on the adapter. When the
  // underlying MPI lacks MPI_THREAD_MULTIPLE, host-side calls additionally
  // serialize on a per-node lock held for the whole transfer, preventing
  // any overlap between a node's outgoing messages (section 3.7).
  ult::SpinLock nic_lock;
  sim::Time nic_free = 0;
  sim::Time mpi_lock_free = 0;

  std::atomic<bool> shutdown{false};
  ult::Fiber* handler = nullptr;

  // Fault-abort handshake (handler fiber only): whether this handler has
  // announced it will execute no further matches/stream ops, so aborting
  // task fibers know their stack buffers can no longer be touched.
  bool ft_acked = false;

  // Commands posted but not yet popped by the handler; feeds the trace's
  // "handler queue depth" counter track.
  std::atomic<int> queue_depth{0};

  /// Post a command to this node's handler.
  void post(MsgCommand* cmd);

  /// Make a stream's pending work visible to the handler.
  void schedule_stream(dev::Stream* s);

  /// Reserve the NIC for a message of wire-time `wire` that is ready at
  /// `ready`; returns the time the message is fully on the wire.
  sim::Time nic_transmit(sim::Time ready, sim::Time wire);

  /// Chunked transmit (section 3.5): run the [prestage?, wire] pipeline for
  /// a `bytes` message split into `chunk`-sized chunks starting at `ready`;
  /// `prestage` (may be nullptr) is the sender's DtoH staging stage. The
  /// NIC is reserved through the last chunk. Returns per-chunk wire-finish
  /// times (the last one is the message's arrival).
  std::vector<sim::Time> nic_transmit_chunked(sim::Time ready,
                                              const sim::LinkModel* prestage,
                                              const sim::LinkModel& wire,
                                              std::uint64_t bytes,
                                              std::uint64_t chunk);

  /// Serialized-MPI mode: acquire the node's MPI lock at `ready`, hold it
  /// for `hold`; returns the release time (the message's effective ready).
  sim::Time serialize_mpi(sim::Time ready, sim::Time hold);
};

class Runtime {
 public:
  /// `ft` (owned by the launch layer, may be null) arms the fault-
  /// tolerance machinery: sender retention, abortable waits, replay of
  /// the retained in-flight messages on recovery reruns, and the
  /// shrinking remap of orphaned tasks. Null keeps every committed
  /// virtual time bit-for-bit identical to a build without the subsystem.
  explicit Runtime(LaunchOptions opts, FtState* ft = nullptr);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Run `task_main` on every task; returns when all tasks and handlers
  /// have finished. Called exactly once.
  void run(const std::function<void()>& task_main);

  const LaunchOptions& options() const { return opts_; }
  Framework framework() const { return opts_.framework; }
  const Features& features() const { return opts_.features; }
  bool functional() const { return opts_.mode == ExecMode::kFunctional; }
  bool is_impacc() const { return opts_.framework == Framework::kImpacc; }

  /// Resolved chunk size of the internode transfer pipeline.
  std::uint64_t chunk_bytes() const { return opts_.chunk_bytes; }

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  Task& task(int id) { return *tasks_[static_cast<std::size_t>(id)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  NodeRt& node(int i) { return *nodes_[static_cast<std::size_t>(i)]; }

  mpi::Comm world() { return world_; }

  /// Register a communicator; the runtime owns it.
  mpi::Comm adopt_comm(std::unique_ptr<mpi::Communicator> c);
  int next_context_id() { return next_context_.fetch_add(1); }

  /// Deterministic context agreement for collective communicator
  /// creation: every member calling with the same (parent context,
  /// creation sequence) receives the same fresh id. Works in model-only
  /// mode, where message payloads (and thus a broadcast id) don't flow.
  int agree_context(int parent_context, int creation_seq);

  ult::Scheduler& scheduler() { return sched_; }

  /// Effective GPUDirect RDMA availability (fabric support AND feature
  /// toggle AND IMPACC framework — the baseline stages via host).
  bool rdma_enabled() const;

  /// Trace sink when tracing is enabled, else nullptr.
  sim::TraceSink* trace() { return trace_.get(); }
  std::shared_ptr<sim::TraceSink> shared_trace() { return trace_; }

  /// Observability bundle (metrics registry + span ids) when tracing or
  /// metrics export is enabled, else nullptr — the single branch every
  /// instrumentation site tests.
  obs::Observability* obs() { return obs_.get(); }

  /// Critical-path recorder when the profiler is enabled, else nullptr —
  /// same null-test discipline as obs().
  obs::CritPath* critpath() { return critpath_.get(); }

  /// Whether the hang watchdog is armed (wait sites register their
  /// diagnostics only then).
  bool watchdog_enabled() const { return opts_.watchdog_seconds > 0; }

  /// Fault-tolerance state when a fault plan is armed, else nullptr —
  /// the single branch every FT site tests (same discipline as obs()).
  FtState* ft() { return ft_; }

  /// Fault-abort handshake. Handlers call ft_note_handler_done() once
  /// when they stop executing work (abandon mode or normal exit);
  /// aborting task fibers spin on ft_handlers_done() before unwinding,
  /// so no handler can touch an unwound fiber's stack buffers.
  void ft_note_handler_done() {
    ft_handlers_done_.fetch_add(1, std::memory_order_acq_rel);
  }
  bool ft_handlers_done() const {
    return ft_handlers_done_.load(std::memory_order_acquire) >= num_nodes();
  }
  void wake_all_handlers();

  /// Stray-message quiescence verifier (DESIGN.md section 12): total
  /// matcher-pending commands plus undrained handler-queue depth across
  /// nodes. 0 after a clean run; anything else means communication
  /// survived teardown. Fills `report` with per-node matcher dumps when
  /// nonzero and `report` is non-null.
  std::size_t stray_messages(std::string* report = nullptr);

  /// Publish the run-total stats (TaskStats, present-table cache,
  /// pinned-pool, matcher, scheduler) into the registry and snapshot it
  /// into `total`/`metrics`; writes the configured metrics file. No-op
  /// when observability is disabled. Called by launch() after the run.
  void publish_run_metrics(const TaskStats& total, sim::Time makespan,
                           obs::MetricsSnapshot* out);

 private:
  friend struct NodeRt;

  /// Resolve the scheduler worker count, folding in deterministic mode
  /// (LaunchOptions::deterministic or IMPACC_DETERMINISTIC): one worker
  /// makes the cooperative fiber schedule — and with it every NIC /
  /// MPI-lock grant order — reproducible across runs. May set
  /// opts.deterministic as a side effect of reading the environment.
  static int resolve_worker_count(LaunchOptions& opts);

  void build_topology();

  /// Close every task's open compute segment, walk the graph backward from
  /// the last-finishing task, publish critpath.<category>.seconds/.fraction
  /// gauges, mark on-path slices in the trace, and write the configured
  /// report/graph files. Called from publish_run_metrics.
  void publish_critpath(sim::Time makespan);

  void watchdog_main();
  void dump_hang_diagnostics(double idle_seconds);

  LaunchOptions opts_;
  FtState* ft_ = nullptr;  // owned by the launch layer; null = unarmed
  std::atomic<int> ft_handlers_done_{0};
  std::shared_ptr<sim::TraceSink> trace_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<obs::CritPath> critpath_;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  ult::Scheduler sched_;
  std::vector<std::unique_ptr<NodeRt>> nodes_;
  std::vector<std::unique_ptr<Task>> tasks_;
  mpi::Comm world_ = nullptr;

  std::mutex comms_mutex_;
  std::vector<std::unique_ptr<mpi::Communicator>> comms_;
  std::map<std::pair<int, int>, int> agreed_contexts_;
  std::atomic<int> next_context_{1};
  std::atomic<int> tasks_remaining_{0};
};

}  // namespace impacc::core
