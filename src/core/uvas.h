// Unified node virtual address space registry (section 3.4).
//
// Device arenas and the node heap are all mapped into one per-node address
// space; given any pointer, the runtime can tell where the data lives.
// This is what lets the unified MPI routines (section 3.5) accept device
// pointers directly.
#pragma once

#include <vector>

#include "dev/device.h"

namespace impacc::core {

class NodeHeap;

class Uvas {
 public:
  enum class Kind : int {
    kHost = 0,  // ordinary host memory (stack, globals, malloc)
    kHeap,      // node heap (heap table tracked; aliasing-eligible)
    kDevice,    // some device's memory
  };

  struct Location {
    Kind kind = Kind::kHost;
    dev::Device* device = nullptr;  // set when kind == kDevice
  };

  void register_device(dev::Device* d) { devices_.push_back(d); }
  void set_heap(const NodeHeap* heap) { heap_ = heap; }

  /// Classify a pointer. Nodes have at most a handful of devices, so a
  /// linear scan beats any index.
  Location locate(const void* p) const;

 private:
  std::vector<dev::Device*> devices_;
  const NodeHeap* heap_ = nullptr;
};

}  // namespace impacc::core
