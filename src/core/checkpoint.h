// Fault tolerance: coordinated checkpoint/restart, sender retention, and
// shrinking recovery (DESIGN.md section 12, ROADMAP item 4).
//
// One FtState exists per launch *only when a fault plan is armed*; with
// no plan the runtime never touches any of this and committed virtual
// times are bit-for-bit identical to builds without it.
//
// Protocol sketch (details in DESIGN.md section 12):
//  - Applications register restartable state with ft_protect() and cut a
//    coordinated checkpoint with ft_checkpoint(): flush device copies,
//    bump the task's epoch, snapshot host regions + virtual clock, then
//    barrier. Snapshot-before-barrier makes epoch comparisons a
//    consistent cut (Chandy-Lamport with the barrier as the marker).
//  - Every send is retained (payload copy + sender epoch) while armed;
//    consumption is stamped with the receiver's epoch. On recovery to
//    epoch R the replay set is exactly {sent_epoch < R and (unconsumed or
//    consume_epoch >= R)} — the messages in flight across the cut.
//  - A fault kills a node (or one device's task); every task aborts via
//    FaultAbort at its next blocking site, the launch layer remaps the
//    orphaned ranks onto surviving hosts (mapping.h), rebuilds the
//    runtime with clocks based at the modeled restart time, and replays
//    the retained messages. A quiescence verifier then checks no stray
//    sends/recvs survive the rerun.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/time.h"

namespace impacc::core {

struct MsgCommand;
struct Task;

/// Thrown by ft_check/ft_wait inside task fibers once a fault has fired;
/// unwinds the task body so the launch layer can run recovery. Never
/// escapes launch().
struct FaultAbort {};

/// One application-registered restartable memory region. The name is the
/// stable key across restarts (pointers change when the node heap is
/// rebuilt).
struct FtRegion {
  std::string name;
  void* ptr = nullptr;
  std::uint64_t bytes = 0;
};

/// Per-(rank, epoch) checkpoint record.
struct TaskSnapshot {
  int epoch = 0;
  sim::Time clock = 0;  // task's virtual time when the snapshot was cut
  struct Region {
    std::string name;
    std::vector<unsigned char> data;
  };
  std::vector<Region> regions;

  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const auto& r : regions) n += r.data.size();
    return n;
  }
};

/// Sender-retention log entry: everything needed to re-inject the message
/// into a rebuilt runtime.
struct RetainedMsg {
  std::uint64_t id = 0;  // nonzero; stamped into MsgCommand::ft_id
  int context_id = 0;
  int tag = 0;
  int src_task = 0;
  int dst_task = 0;
  int src_comm_rank = 0;
  std::uint64_t bytes = 0;
  std::vector<unsigned char> payload;  // packed wire bytes (functional mode)
  int sent_epoch = 0;
  bool consumed = false;
  int consume_epoch = 0;
};

/// ft.* metric counters (docs/OBSERVABILITY.md). Mutated under FtState's
/// mutex or from single-threaded launch code.
struct FtCounters {
  std::uint64_t faults = 0;            // events that fired
  std::uint64_t recoveries = 0;        // restarts performed
  std::uint64_t checkpoints = 0;       // per-rank snapshots cut
  std::uint64_t checkpoint_bytes = 0;  // bytes captured across snapshots
  std::uint64_t retained_msgs = 0;     // sends entered into the log
  std::uint64_t retained_bytes = 0;
  std::uint64_t replayed_msgs = 0;  // log entries re-injected on recovery
  std::uint64_t pruned_msgs = 0;    // log entries dropped as committed
  double lost_seconds = 0;          // virtual time rolled back by faults
  double recovery_seconds = 0;      // modeled restart + restore time
};

/// Modeled checkpoint/restart costs (virtual time). The simulation
/// charges snapshot and restore copies at host-memcpy-like bandwidth and
/// a fixed coordination latency per restart.
constexpr double kCheckpointBandwidthBytesPerSec = 8.0e9;
constexpr sim::Time kCheckpointLatency = sim::from_us(50.0);
constexpr sim::Time kRestartLatency = sim::from_ms(5.0);

/// One completed restart, for the ft trace spans.
struct RecoveryRecord {
  int node = 0;
  int device = -1;  // -1 = whole node
  sim::Time fault_time = 0;
  sim::Time restart = 0;
};

class FtState {
 public:
  explicit FtState(sim::FaultPlan plan) : plan_(std::move(plan)) {
    refresh_next_due();
  }

  sim::FaultPlan& plan() { return plan_; }

  /// World size, needed for the committed-epoch min; set by the Runtime
  /// once the mapping is known (constant across recovery reruns).
  void set_num_tasks(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    num_tasks_ = n;
  }

  // --- fault firing ---------------------------------------------------------
  /// Cheap poll from task fibers: fires the earliest due event the first
  /// time any task clock passes its time. Fault time is the *event's*
  /// scheduled time, not the observing clock, so firing is deterministic
  /// regardless of which task notices first.
  void observe(sim::Time now);
  bool fired() const { return fired_.load(std::memory_order_acquire); }
  sim::Time fault_time() const { return fault_time_; }
  /// The event taken by the current (un-recovered) firing; valid while
  /// fired().
  sim::FaultEvent fired_event() const;

  // --- exclusions (dead resources) -----------------------------------------
  bool node_excluded(int node) const;
  bool host_excluded(int node, int local_index) const;
  int num_excluded_nodes() const;
  int num_excluded() const;
  /// (node, local_index) pairs; local_index < 0 means the whole node.
  std::vector<std::pair<int, int>> exclusions() const;

  // --- checkpoints ----------------------------------------------------------
  void save_snapshot(int task, TaskSnapshot snap);
  /// Latest epoch every rank has saved (0 = none committed).
  int committed_epoch() const;
  const TaskSnapshot* find_snapshot(int task, int epoch) const;

  // --- sender retention -----------------------------------------------------
  /// Enter a send into the log; returns its nonzero retention id. The
  /// payload is copied only in functional mode (model-only buffers are
  /// not dereferenceable).
  std::uint64_t retain(const MsgCommand& cmd, int sent_epoch, bool functional);
  void mark_consumed(std::uint64_t id, int consume_epoch);
  /// The current replay set (valid between begin_recovery and the rebuilt
  /// run). Entries stay in the log so cascading faults replay them again.
  std::vector<RetainedMsg> replay_set() const;

  // --- recovery -------------------------------------------------------------
  /// Consume the fired event: exclude its target, fix the restore epoch
  /// and modeled restart time, prune the retention log down to the replay
  /// set, and clear the fired flag so later events can fire in the rerun.
  void begin_recovery();
  bool recovering() const { return recovering_; }
  int restore_epoch() const { return restore_epoch_; }
  sim::Time restart_base() const { return restart_base_; }
  std::vector<RecoveryRecord> recovery_log() const;

  FtCounters counters;

 private:
  void refresh_next_due();  // callers hold mu_

  sim::FaultPlan plan_;
  int num_tasks_ = 0;

  mutable std::mutex mu_;
  std::atomic<bool> fired_{false};
  // Earliest unfired event time; +inf when none. Read lock-free on the
  // observe fast path.
  std::atomic<double> next_due_{0};
  int fired_index_ = -1;
  sim::Time fault_time_ = 0;

  struct Exclusion {
    int node;
    int local_index;  // -1 = whole node
  };
  std::vector<Exclusion> excluded_;
  std::vector<RecoveryRecord> recoveries_;

  // rank -> (epoch -> snapshot); only the last two epochs are kept.
  std::map<int, std::map<int, TaskSnapshot>> snapshots_;

  std::map<std::uint64_t, RetainedMsg> log_;  // keyed by retention id
  std::uint64_t next_id_ = 1;

  bool recovering_ = false;
  int restore_epoch_ = 0;
  sim::Time restart_base_ = 0;
};

}  // namespace impacc::core

namespace impacc {

/// True when the current launch has a fault plan armed. All other ft_*
/// calls are no-ops (returning 0) when unarmed, so applications can leave
/// checkpoint calls in unconditionally.
bool ft_armed();

/// Register (or re-register, after a restart) a restartable host memory
/// region under a stable name. Must be called from a task fiber.
void ft_protect(const char* name, void* ptr, std::uint64_t bytes);

/// Cut a coordinated checkpoint: flush protected regions' device copies
/// to the host, bump this task's epoch, snapshot regions + clock, then
/// barrier on MPI_COMM_WORLD. Returns the new epoch (0 when unarmed).
/// Contract: the caller must have no outstanding MPI requests (request
/// handles are runtime state and are not checkpointed). In-flight *eager*
/// messages are fine — that is what the sender-retention replay covers.
int ft_checkpoint();

/// On a recovery rerun, restore the protected regions from the committed
/// snapshot and return its epoch; returns 0 on a fresh (non-recovery) run
/// or when no checkpoint was committed before the fault. The caller is
/// responsible for refreshing device copies (acc::update_device) — the
/// present table was rebuilt by the re-executed copyins.
int ft_restore();

}  // namespace impacc
