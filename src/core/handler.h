// Message handler (section 3.7) and command routing.
//
// One handler fiber runs per node. It is the single consumer of the
// node's command queue: it matches send/recv pairs, fuses matched
// intra-node pairs into single copies (Fig. 6), applies node heap
// aliasing when eligible (section 3.8), completes pending internode
// messages, and drives the activity queues (section 3.6).
//
// With features.handler_batching on (the default) the loop runs
// io_uring-style (DESIGN.md section 9): MpscQueue::pop_all() detaches the
// whole producer chain in one exchange, the chain is sliced into
// kHandlerRingSize submission rings, each ring is matched in one pass,
// and a completion ring coalesces the per-message stats_mutex
// acquisitions, request completions, and activity-queue wakeups into one
// flush per slice. Flag off reproduces the per-message legacy loop
// exactly; either way the computed virtual times are identical.
#pragma once

#include "core/message.h"
#include "core/runtime.h"
#include "core/task.h"
#include "dev/copyengine.h"

namespace impacc::core {

/// Handler fiber entry; exits when the node is shut down and drained.
void handler_main(NodeRt* node);

/// Route a fully built send command whose `ready` time is set. Decides
/// intra-node vs internode, eager vs rendezvous, and may complete the
/// sender's request immediately (eager). `from_task_fiber` is false when
/// called from a stream's posted head (handler context) — the task clock
/// must not be touched then.
void route_send(Task& t, MsgCommand* cmd, bool from_task_fiber);

/// Route a posted receive to the receiving task's node handler.
void route_recv(Task& t, MsgCommand* cmd);

/// Enqueue an operation on one of the task's activity queues and make the
/// node handler aware of it. Advances the task clock by the queue-op
/// overhead.
void submit_stream_op(Task& t, int async_id, dev::StreamOp op);

/// Enqueue and synchronously wait for an operation; returns the op's
/// completion time (already merged into the task clock).
sim::Time sync_stream_op(Task& t, int async_id, dev::StreamOp op);

/// Block until activity queue `async_id` has drained (acc wait).
void wait_stream(Task& t, int async_id);

/// Account one modeled copy against task `t`: updates TaskStats
/// copy_time/copy_count and, when observability is on, the matching
/// dev.copy.<path>.* histograms. Routing every copy-accounting site
/// through here is what makes the histogram sums reconcile with the
/// TaskStats totals by construction (docs/OBSERVABILITY.md).
void account_copy(Task& t, dev::CopyPathKind kind, sim::Time cost,
                  std::uint64_t bytes);

/// Critical-path helpers (no-ops returning 0 when `cp` is null).
///
/// cp_checkpoint closes the task's open compute segment [cp_open, now] as
/// a kCompute node chained after cp_last, returns its id, and opens a new
/// segment at now. Call before handing the task's chain to someone else
/// (issuing a command, enqueuing a stream op).
std::uint32_t cp_checkpoint(Task& t, obs::CritPath* cp);

/// cp_join records a wakeup: the task blocked at `before`, a producer
/// (graph node `producer`) finished at `now`, and the task resumes. The
/// segment is closed at `before`, a zero-length join node at `now` links
/// {segment, producer} with the gap categorized as match_wait, and a new
/// segment opens at `now`. Call after every blocking wait that merged a
/// completion into the task clock.
void cp_join(Task& t, obs::CritPath* cp, sim::Time before,
             std::uint32_t producer);

/// Fault-injection poll (core/checkpoint.h): observe the task clock
/// against the armed fault plan and throw FaultAbort once a fault has
/// fired. A single null test when no plan is armed.
void ft_check(Task& t);

/// rec.wait() with fault abort. With no fault plan armed this IS
/// rec.wait() — the fiber parks, bit-for-bit the pre-FT behaviour. With a
/// plan armed it polls the record and the plan cooperatively, so a fired
/// fault unwinds the task fiber instead of leaving it parked forever.
sim::Time ft_wait(Task& t, dev::CompletionRecord& rec);

/// Hang-watchdog wait-site registration (no-ops unless IMPACC_WATCHDOG is
/// armed): record what the task fiber is about to block on, so the
/// watchdog's dump can name the site; clear after the wait returns.
void wd_register(Task& t, const char* site, int context, int peer, int tag,
                 std::uint64_t bytes);
void wd_clear(Task& t);

/// Eager-protocol threshold used for both intra- and internode sends.
constexpr std::uint64_t kEagerBytes = 8192;

/// Submission-ring capacity of the batched handler loop: one detached
/// producer chain is processed in slices of at most this many commands,
/// bounding both the sink's deferred-work footprint and the latency
/// between a command's match and its completion flush.
constexpr std::size_t kHandlerRingSize = 256;

}  // namespace impacc::core
