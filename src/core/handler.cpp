#include "core/handler.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/log.h"
#include "dev/copyengine.h"
#include "mpi/datatype.h"
#include "sim/costmodel.h"
#include "sim/netmodel.h"

namespace impacc::core {

namespace {

/// Completion ring of one handler batch (DESIGN.md section 9). The
/// submission pass (matching) appends the per-message side effects that
/// used to be applied inline — TaskStats mutations, request completions,
/// activity-queue wakeups — and the completion pass applies them
/// coalesced: one stats_mutex acquisition per task, one astream_lock +
/// wake per node, instead of one of each per message. Request state is
/// held by shared_ptr because the matched MsgCommands are deleted before
/// the flush runs. Virtual times are computed in the submission pass and
/// carried through unchanged, so batching never moves a completion time.
struct BatchSink {
  struct TaskDelta {
    Task* task;
    std::array<sim::Time, 6> copy_time{};
    std::array<std::uint64_t, 6> copy_count{};
    std::uint64_t msgs_recv = 0;
    std::uint64_t heap_aliases = 0;
  };

  // A node hosts a handful of tasks, so the linear scan beats a map.
  std::vector<TaskDelta> tasks;
  // (request, completion time, critical-path node of the completing work).
  std::vector<
      std::tuple<std::shared_ptr<mpi::RequestState>, sim::Time, std::uint32_t>>
      completions;
  std::vector<std::pair<dev::Stream*, NodeRt*>> resumes;

  TaskDelta& delta(Task& t) {
    for (TaskDelta& d : tasks) {
      if (d.task == &t) return d;
    }
    tasks.push_back(TaskDelta{&t, {}, {}, 0, 0});
    return tasks.back();
  }
};

/// Apply one batch's deferred side effects, coalesced per task / node.
void flush_batch(BatchSink& sink) {
  for (BatchSink::TaskDelta& d : sink.tasks) {
    std::lock_guard<std::mutex> lock(d.task->stats_mutex);
    for (std::size_t i = 0; i < 6; ++i) {
      d.task->stats.copy_time[i] += d.copy_time[i];
      d.task->stats.copy_count[i] += d.copy_count[i];
    }
    d.task->stats.msgs_recv += d.msgs_recv;
    d.task->stats.heap_aliases += d.heap_aliases;
  }
  for (auto& [req, done, cp] : sink.completions) {
    req->rec.complete(done, cp);
  }
  // Activity-queue advancement: group the resumed streams by node so each
  // node pays one lock acquisition and one wake for the whole batch.
  for (std::size_t i = 0; i < sink.resumes.size(); ++i) {
    NodeRt* node = sink.resumes[i].second;
    if (node == nullptr) continue;  // grouped with an earlier entry
    node->astream_lock.lock();
    for (std::size_t j = i; j < sink.resumes.size(); ++j) {
      if (sink.resumes[j].second == node) {
        node->active_streams.push_back(sink.resumes[j].first);
        if (j != i) sink.resumes[j].second = nullptr;
      }
    }
    node->astream_lock.unlock();
    node->wake.set();
  }
  sink.tasks.clear();
  sink.completions.clear();
  sink.resumes.clear();
}

/// Account one completed MPI initiation back to its activity queue. `cp`
/// is the completing match's critical-path node; it joins the stream's
/// dependency chain so later queue ops depend on the message.
void resume_stream(MsgCommand* cmd, sim::Time t, BatchSink* sink,
                   std::uint32_t cp) {
  if (cmd->stream == nullptr) return;
  if (cmd->stream->complete_inflight(t, cp)) {
    if (sink != nullptr) {
      sink->resumes.emplace_back(cmd->stream, cmd->stream_node);
    } else {
      cmd->stream_node->schedule_stream(cmd->stream);
    }
  }
}

/// account_copy, routed through the batch sink when one is active: the
/// obs histograms (lock-free) record immediately either way; only the
/// stats_mutex-guarded TaskStats part is deferred.
void account_copy_batched(BatchSink* sink, Task& t, dev::CopyPathKind kind,
                          sim::Time cost, std::uint64_t bytes) {
  if (sink == nullptr) {
    account_copy(t, kind, cost, bytes);
    return;
  }
  BatchSink::TaskDelta& d = sink->delta(t);
  d.copy_time[static_cast<std::size_t>(kind)] += cost;
  d.copy_count[static_cast<std::size_t>(kind)] += 1;
  if (obs::Observability* ob = t.rt->obs()) {
    const auto i = static_cast<std::size_t>(kind);
    ob->copy_seconds[i]->record(cost);
    ob->copy_bytes[i]->record(static_cast<double>(bytes));
  }
}

/// After a fault-injected abort the handlers are expected to exit with
/// unmatched messages — the recovery path drains and replays them.
bool fault_aborted(NodeRt& n) {
  FtState* ft = n.rt->ft();
  return ft != nullptr && ft->fired();
}

/// Mark this handler as executing no further work (once). Aborting task
/// fibers spin on Runtime::ft_handlers_done() before unwinding, because
/// matches and stream ops can reference fiber-stack memory (receive
/// buffers, kernel-body captures) that dies with the unwind.
void ft_note_done_once(NodeRt& n) {
  if (n.ft_acked) return;
  n.ft_acked = true;
  if (n.rt->ft() != nullptr) n.rt->ft_note_handler_done();
}

/// Abandon mode, entered by both handler loops once a fault has fired:
/// the run is being discarded, so execute nothing — delete queued
/// commands unprocessed (their retention-log entries drive the replay)
/// and drop stream scheduling (queued ops are reclaimed by ~Stream, the
/// matcher by ~Runtime). Returns when the node shuts down.
void handler_abandon(NodeRt& n) {
  ft_note_done_once(n);
  for (;;) {
    bool progress = false;
    while (MpscNode* raw = n.queue.pop()) {
      progress = true;
      n.queue_depth.fetch_sub(1, std::memory_order_relaxed);
      delete static_cast<MsgCommand*>(raw);
    }
    n.astream_lock.lock();
    if (!n.active_streams.empty()) {
      progress = true;
      n.active_streams.clear();
    }
    n.astream_lock.unlock();
    if (!progress) {
      if (n.shutdown.load(std::memory_order_acquire) && n.queue.empty_hint()) {
        return;
      }
      n.wake.wait_and_reset();
    }
  }
}

/// Complete a matched pair. `snd` is kSend or kIncoming, `rcv` is kRecv.
/// With `sink` null every side effect applies inline (the legacy,
/// flag-off behaviour); with a sink the stats/completion/stream work is
/// deferred to the batch's completion pass. The computed virtual times
/// are identical either way.
void complete_match(NodeRt& n, MsgCommand* snd, MsgCommand* rcv,
                    BatchSink* sink) {
  Runtime* rt = n.rt;
  obs::Observability* ob = rt->obs();
  const std::uint64_t bytes = snd->bytes;
  IMPACC_CHECK_MSG(bytes <= rcv->bytes, "message truncation (recv too small)");
  const bool functional = rt->functional();
  Task& recv_task = rt->task(rcv->dst_task);
  const sim::RuntimeCosts& costs = rt->options().cluster.costs;

  // Fault tolerance: stamp the retention-log entry with the receiver's
  // current epoch. A relaxed read is enough — the receiver bumps its
  // epoch on its own fiber and the epoch ordering only needs to be
  // consistent with the functional delivery order, which the MPSC
  // post/complete synchronization already provides.
  if (snd->ft_id != 0) {
    if (FtState* ft = rt->ft()) {
      ft->mark_consumed(snd->ft_id,
                        recv_task.ft_epoch.load(std::memory_order_relaxed));
    }
  }

  sim::Time done = 0;
  // Critical-path category of the delivery work [match start, done]:
  // receiver-side HtoD staging for device-destined internode messages,
  // the fused-copy path kind for intra-node copies, plain handler
  // overhead otherwise.
  obs::CritCategory mcat = obs::CritCategory::kHandler;
  if (snd->kind == MsgCommand::Kind::kIncoming) {
    // Pending internode message: data hit this node at snd->arrival; the
    // handler writes device-resident receive buffers after completion of
    // the non-blocking transfer (section 3.7). The pending-queue handling
    // is IMPACC machinery — the baseline's processes receive directly —
    // and is the source of the paper's small LULESH regression on Beacon.
    const sim::Time cost = rt->is_impacc() ? costs.handler_command_overhead : 0;
    if (rcv->buf_dev != nullptr && !rt->rdma_enabled()) {
      mcat = obs::CritCategory::kCopyHtoD;
      if (snd->chunk_split > 0) {
        // Chunked sender (section 3.5): issue the HtoD staging copy of each
        // chunk as it comes off the wire, overlapping with the chunks still
        // in flight; the last chunk's copy bounds the completion.
        const sim::LinkModel htod =
            sim::staging_link(*n.desc, rcv->buf_dev->desc(), rcv->near);
        sim::Time finish = rcv->ready;
        sim::Time busy = 0;
        std::uint64_t off = 0;
        for (std::size_t j = 0; j < snd->chunk_arrivals.size(); ++j) {
          const std::uint64_t len = std::min(snd->chunk_split, bytes - off);
          const sim::Time t = htod.time(len);
          finish = std::max(finish, snd->chunk_arrivals[j]) + t;
          busy += t;
          off += len;
        }
        IMPACC_CHECK_MSG(off == bytes, "chunk pipeline lost bytes");
        account_copy_batched(sink, recv_task, dev::CopyPathKind::kHostToDev,
                             busy, bytes);
        if (ob != nullptr) ob->phase_stage_htod->record(busy);
        done = finish + cost;
      } else {
        const sim::Time pcie = sim::pcie_copy_time(
            *n.desc, rcv->buf_dev->desc(), bytes, rcv->near);
        account_copy_batched(sink, recv_task, dev::CopyPathKind::kHostToDev,
                             pcie, bytes);
        if (ob != nullptr) ob->phase_stage_htod->record(pcie);
        done = std::max(snd->arrival, rcv->ready) + (cost + pcie);
      }
    } else {
      done = std::max(snd->arrival, rcv->ready) + cost;
    }
    if (functional && bytes > 0) {
      const void* src = snd->eager_payload.empty() ? snd->wire_src
                                                   : snd->eager_payload.data();
      if (mpi::is_derived(rcv->recv_dtype)) {
        mpi::type_unpack(rcv->buf, src,
                         static_cast<int>(bytes / mpi::type_size(rcv->recv_dtype)),
                         rcv->recv_dtype);
      } else {
        std::memcpy(rcv->buf, src, bytes);
      }
    }
  } else {
    // Intra-node pair: try node heap aliasing, else fuse into one copy.
    bool aliased = false;
    if (rt->is_impacc() && rt->features().heap_aliasing &&
        snd->readonly_hint && rcv->readonly_hint &&
        rcv->recv_ptr_addr != nullptr && snd->buf_dev == nullptr &&
        rcv->buf_dev == nullptr && snd->eager_payload.empty() &&
        !mpi::is_derived(rcv->recv_dtype)) {
      aliased = n.heap.alias(rcv->recv_ptr_addr, rcv->buf, bytes, snd->buf);
    }
    const sim::Time t0 = std::max(snd->ready, rcv->ready);
    if (aliased) {
      done = t0 + 2 * costs.handler_command_overhead;
      if (sink != nullptr) {
        sink->delta(recv_task).heap_aliases += 1;
      } else {
        std::lock_guard<std::mutex> lock(recv_task.stats_mutex);
        recv_task.stats.heap_aliases += 1;
      }
    } else {
      dev::IntraCopyPlan plan;
      if (rt->is_impacc() && rt->features().message_fusion) {
        plan = dev::plan_fused_copy(*n.desc, costs, snd->buf_dev, rcv->buf_dev,
                                    bytes, snd->near, rcv->near,
                                    rt->features().peer_dtod);
      } else {
        // Baseline process model / fusion ablation: stage through shared
        // memory, with PCIe legs for any device-resident side.
        plan = dev::plan_unfused_copy(*n.desc, costs, snd->buf_dev,
                                      rcv->buf_dev, bytes, snd->near,
                                      rcv->near);
      }
      done = t0 + plan.cost;
      mcat = obs::crit_copy_category(static_cast<int>(plan.kind));
      account_copy_batched(sink, recv_task, plan.kind, plan.cost, bytes);
      if (functional && bytes > 0) {
        const void* src = snd->eager_payload.empty()
                              ? snd->buf
                              : snd->eager_payload.data();
        if (mpi::is_derived(rcv->recv_dtype)) {
          mpi::type_unpack(
              rcv->buf, src,
              static_cast<int>(bytes / mpi::type_size(rcv->recv_dtype)),
              rcv->recv_dtype);
        } else {
          std::memmove(rcv->buf, src, bytes);
        }
      }
    }
  }

  const bool incoming = snd->kind == MsgCommand::Kind::kIncoming;
  const sim::Time avail = incoming ? snd->arrival : snd->ready;
  const sim::Time start = std::max(avail, rcv->ready);
  // Critical-path node of the delivery: sender side comes in through the
  // wire node (internode) or the send's issue-time chains (intranode);
  // the receiver's post chains through cp_pred/cp_pred2. The gap before
  // `start` is matching wait (data or buffer not yet available).
  std::uint32_t cp_done = 0;
  if (obs::CritPath* cpg = rt->critpath()) {
    const std::uint32_t snd_p = incoming ? snd->cp_node : snd->cp_pred;
    const std::uint32_t snd_p2 = incoming ? 0 : snd->cp_pred2;
    const std::uint32_t rcv_p =
        rcv->cp_pred2 != 0 ? rcv->cp_pred2 : rcv->cp_pred;
    cp_done = cpg->add(mcat, start, done, snd_p, snd_p2, rcv_p,
                       obs::CritCategory::kMatchWait, rcv->dst_task, bytes,
                       "msg " + std::to_string(snd->src_task) + "->" +
                           std::to_string(rcv->dst_task));
  }
  if (ob != nullptr) {
    ob->msg_bytes->record(static_cast<double>(bytes));
    ob->phase_match_wait->record(start - avail);
    if (incoming) {
      ob->msgs_internode->add();
      if (snd->span_id != 0) {
        ob->phase_total->record(done - snd->span_posted);
      }
    } else {
      ob->msgs_intranode->add();
    }
  }
  if (sim::TraceSink* trace = rt->trace()) {
    trace->record(
        n.index, "mpi",
        "msg " + std::to_string(snd->src_task) + "->" +
            std::to_string(rcv->dst_task) + " (" +
            std::to_string(bytes) + "B)",
        incoming ? "internode" : "intranode", start, done);
    if (incoming && snd->span_id != 0) {
      // Flow finish: binds (bp:"e") to the receive-side slice recorded
      // just above, closing the arrow from the send-side slice.
      trace->record_flow(false, snd->span_id, n.index, "mpi", "msg", "mpi",
                         start);
    }
  }

  // Receive status + completions. Status fields are written before the
  // completion is signaled (or enqueued), so waiters always observe them.
  if (rcv->req != nullptr) {
    rcv->req->status.source = snd->src_comm_rank;
    rcv->req->status.tag = snd->tag;
    rcv->req->status.bytes = bytes;
    if (sink != nullptr) {
      sink->completions.emplace_back(rcv->req, done, cp_done);
    } else {
      rcv->req->rec.complete(done, cp_done);
    }
  }
  if (sink != nullptr) {
    sink->delta(recv_task).msgs_recv += 1;
  } else {
    std::lock_guard<std::mutex> lock(recv_task.stats_mutex);
    recv_task.stats.msgs_recv += 1;
  }
  if (!snd->sender_completed && snd->req != nullptr) {
    if (sink != nullptr) {
      sink->completions.emplace_back(snd->req, done, cp_done);
    } else {
      snd->req->rec.complete(done, cp_done);
    }
  }
  if (snd->remote_sender_req != nullptr) {
    if (sink != nullptr) {
      sink->completions.emplace_back(snd->remote_sender_req, done, cp_done);
    } else {
      snd->remote_sender_req->rec.complete(done, cp_done);
    }
  }
  if (snd->remote_sender_stream != nullptr) {
    if (snd->remote_sender_stream->complete_inflight(done, cp_done)) {
      if (sink != nullptr) {
        sink->resumes.emplace_back(snd->remote_sender_stream,
                                   snd->remote_sender_node);
      } else {
        snd->remote_sender_node->schedule_stream(snd->remote_sender_stream);
      }
    }
  }
  resume_stream(snd, done, sink, cp_done);
  resume_stream(rcv, done, sink, cp_done);
  delete snd;
  delete rcv;
}

/// Answer a probe against a pending send (MPI_Probe/Iprobe semantics:
/// status is filled but the message stays queued).
void complete_probe(NodeRt& n, MsgCommand* probe, const MsgCommand* send) {
  const sim::Time ready = send->kind == MsgCommand::Kind::kIncoming
                              ? send->arrival
                              : send->ready;
  const sim::Time done = std::max(probe->ready, ready) +
                         n.rt->options().cluster.costs.mpi_call_overhead;
  probe->req->status.source = send->src_comm_rank;
  probe->req->status.tag = send->tag;
  probe->req->status.bytes = send->bytes;
  probe->req->probe_found = true;
  probe->req->rec.complete(done);
  delete probe;
}

void handle_probe(NodeRt& n, MsgCommand* probe) {
  if (const MsgCommand* send = n.matcher.find_pending_send(*probe)) {
    complete_probe(n, probe, send);
    return;
  }
  if (probe->probe_blocking) {
    n.matcher.store_probe(probe);
    return;
  }
  // Iprobe: answer "nothing pending" from the current state.
  probe->req->probe_found = false;
  probe->req->rec.complete(probe->ready +
                           n.rt->options().cluster.costs.mpi_call_overhead);
  delete probe;
}

/// Submit one command: probes answer immediately; everything else goes
/// through the matcher and, on a match, the (possibly sink-deferred)
/// completion path.
void submit_command(NodeRt& n, MsgCommand* cmd, BatchSink* sink) {
  if (cmd->kind == MsgCommand::Kind::kProbe) {
    handle_probe(n, cmd);
    return;
  }
  MsgCommand* partner = n.matcher.submit(cmd);
  if (partner != nullptr) {
    MsgCommand* snd = cmd->kind == MsgCommand::Kind::kRecv ? partner : cmd;
    MsgCommand* rcv = cmd->kind == MsgCommand::Kind::kRecv ? cmd : partner;
    complete_match(n, snd, rcv, sink);
  } else if (cmd->kind != MsgCommand::Kind::kRecv) {
    // A send just became pending: wake any parked probes it satisfies.
    for (MsgCommand* p : n.matcher.take_matching_probes(*cmd)) {
      complete_probe(n, p, cmd);
    }
  }
}

/// Advance every runnable activity queue; returns true if any ran.
bool advance_streams(NodeRt& n, bool functional) {
  bool progress = false;
  for (;;) {
    n.astream_lock.lock();
    if (n.active_streams.empty()) {
      n.astream_lock.unlock();
      break;
    }
    dev::Stream* s = n.active_streams.front();
    n.active_streams.pop_front();
    n.astream_lock.unlock();
    progress = true;
    s->advance(functional);
  }
  return progress;
}

/// The pre-batching handler loop, byte-for-byte the behaviour shipped
/// before the ring pipeline: one pop per message, per-dequeue trace
/// counter, every side effect inline (features.handler_batching=off).
void handler_loop_legacy(NodeRt& n) {
  const bool functional = n.rt->functional();
  sim::TraceSink* trace = n.rt->trace();
  for (;;) {
    if (fault_aborted(n)) return handler_abandon(n);
    bool progress = false;
    // Drain the in-order command queue.
    while (MpscNode* raw = n.queue.pop()) {
      progress = true;
      auto* cmd = static_cast<MsgCommand*>(raw);
      const int depth =
          n.queue_depth.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (trace != nullptr) {
        trace->record_counter(n.index, "handler queue depth", "commands",
                              cmd->kind == MsgCommand::Kind::kIncoming
                                  ? cmd->arrival
                                  : cmd->ready,
                              depth);
      }
      submit_command(n, cmd, nullptr);
    }
    // Advance runnable activity queues.
    if (advance_streams(n, functional)) progress = true;
    if (!progress) {
      if (n.shutdown.load(std::memory_order_acquire) && n.queue.empty_hint()) {
        if (!n.matcher.drained() && !fault_aborted(n)) {
          IMPACC_LOG_WARN(
              "node %d handler exiting with unmatched messages "
              "(application did not complete all communication)",
              n.index);
        }
        return;
      }
      n.wake.wait_and_reset();
    }
  }
}

/// The ring pipeline (DESIGN.md section 9): detach the whole producer
/// chain in one exchange, slice it into fixed-size submission rings,
/// match each ring in one pass, then flush the completion ring — the
/// stats/wakeup coalescing — once per slice. Queue-depth accounting and
/// the trace counter move to batch boundaries.
void handler_loop_batched(NodeRt& n) {
  const bool functional = n.rt->functional();
  sim::TraceSink* trace = n.rt->trace();
  obs::Observability* ob = n.rt->obs();
  std::array<MsgCommand*, kHandlerRingSize> ring;
  BatchSink sink;
  std::uint64_t fastpath_seen = 0;
  for (;;) {
    if (fault_aborted(n)) return handler_abandon(n);
    bool progress = false;
    // Like the legacy loop, drain to empty — including commands that
    // arrive while a batch is being processed — before advancing the
    // activity queues, so stream-head sends keep their position relative
    // to queued traffic.
    MpscQueue::Batch batch = n.queue.pop_all();
    for (;;) {
      // Fill the submission ring from the detached chain.
      std::size_t count = 0;
      while (count < kHandlerRingSize) {
        MpscNode* raw = batch.take();
        if (raw == nullptr) break;
        ring[count++] = static_cast<MsgCommand*>(raw);
      }
      if (count == 0) {
        // Chain exhausted: one more exchange picks up anything pushed
        // since the detach (the Batch is fully drained, as pop_all
        // requires).
        batch = n.queue.pop_all();
        if (batch.empty()) break;
        continue;
      }
      progress = true;
      // The boundary sample's timestamp comes from the slice's last
      // command — grab it before the submission pass frees the commands.
      const MsgCommand* last = ring[count - 1];
      const sim::Time sample_at = last->kind == MsgCommand::Kind::kIncoming
                                      ? last->arrival
                                      : last->ready;
      // Submission pass: batch matching, side effects into the sink.
      for (std::size_t i = 0; i < count; ++i) {
        submit_command(n, ring[i], &sink);
      }
      // Depth accounting and tracing once per slice, not per dequeue.
      const int depth =
          n.queue_depth.fetch_sub(static_cast<int>(count),
                                  std::memory_order_relaxed) -
          static_cast<int>(count);
      if (trace != nullptr) {
        trace->record_counter(n.index, "handler queue depth", "commands",
                              sample_at, depth);
      }
      if (ob != nullptr) {
        ob->handler_batch_size->record(static_cast<double>(count));
        ob->handler_queue_depth->set(static_cast<double>(depth));
        const std::uint64_t fp = n.matcher.stats().fastpath_hits;
        if (fp != fastpath_seen) {
          ob->matcher_fastpath->add(fp - fastpath_seen);
          fastpath_seen = fp;
        }
      }
      // Completion pass: coalesced stats, completions, stream wakeups.
      flush_batch(sink);
    }
    // Advance runnable activity queues.
    if (advance_streams(n, functional)) progress = true;
    if (!progress) {
      if (n.shutdown.load(std::memory_order_acquire) && n.queue.empty_hint()) {
        if (!n.matcher.drained() && !fault_aborted(n)) {
          IMPACC_LOG_WARN(
              "node %d handler exiting with unmatched messages "
              "(application did not complete all communication)",
              n.index);
        }
        return;
      }
      n.wake.wait_and_reset();
    }
  }
}

}  // namespace

void account_copy(Task& t, dev::CopyPathKind kind, sim::Time cost,
                  std::uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(t.stats_mutex);
    t.stats.copy_time[static_cast<std::size_t>(kind)] += cost;
    t.stats.copy_count[static_cast<std::size_t>(kind)] += 1;
  }
  if (obs::Observability* ob = t.rt->obs()) {
    const auto i = static_cast<std::size_t>(kind);
    ob->copy_seconds[i]->record(cost);
    ob->copy_bytes[i]->record(static_cast<double>(bytes));
  }
}

void handler_main(NodeRt* node) {
  if (node->rt->features().handler_batching) {
    handler_loop_batched(*node);
  } else {
    handler_loop_legacy(*node);
  }
}

void route_send(Task& t, MsgCommand* cmd, bool from_task_fiber) {
  Runtime* rt = t.rt;
  NodeRt& src_node = *t.node;
  Task& dst_task = rt->task(cmd->dst_task);
  NodeRt& dst_node = *dst_task.node;
  const bool functional = rt->functional();
  const sim::ClusterDesc& cluster = rt->options().cluster;

  if (&dst_node == &src_node) {
    // Intra-node. Eager small host messages complete the sender right
    // away; everything else rendezvouses at match time. readonly-hinted
    // sends stay rendezvous so heap aliasing can see the original buffer.
    const bool eager = cmd->bytes <= kEagerBytes && cmd->buf_dev == nullptr &&
                       !cmd->readonly_hint && !cmd->force_rendezvous;
    if (eager) {
      if (functional && cmd->bytes > 0 && cmd->eager_payload.empty()) {
        const auto* p = static_cast<const unsigned char*>(cmd->buf);
        cmd->eager_payload.assign(p, p + cmd->bytes);
      }
      cmd->sender_completed = true;
      if (cmd->req != nullptr) {
        cmd->req->rec.complete(
            cmd->ready + sim::host_copy_time(*src_node.desc, cmd->bytes),
            cmd->cp_pred);
      }
    }
    src_node.post(cmd);
    return;
  }

  // Internode. Sender-side staging (async DtoH into pinned memory +
  // callback chaining into the underlying MPI_Isend) happens before the
  // wire unless the fabric reads device memory directly. Transfers longer
  // than one chunk split so the DtoH stage, the wire, and the receiver's
  // HtoD stage overlap (section 3.5); RDMA paths skip both staging legs
  // and gain nothing from splitting.
  obs::Observability* ob = rt->obs();
  sim::TraceSink* trace = rt->trace();
  obs::CritPath* cpg = rt->critpath();
  std::uint32_t cp_stage = 0;       // sender-side DtoH staging node
  sim::Time wire_occupancy = 0;     // NIC busy time of this message
  sim::Time cp_serial_before = -1;  // task clock before the MPI-lock merge
  sim::Time ready = cmd->ready;
  const sim::Time posted = cmd->ready;
  if (ob != nullptr) {
    cmd->span_id = ob->next_span_id();
    cmd->span_posted = posted;
  }
  const bool staged_send = cmd->buf_dev != nullptr && !rt->rdma_enabled();
  const dev::ChunkPipeline pipe = dev::plan_chunk_pipeline(
      rt->is_impacc() && rt->features().chunk_pipeline && !rt->rdma_enabled(),
      cmd->bytes, rt->chunk_bytes());
  sim::Time on_wire_done = 0;
  std::uint64_t pinned_peak = 0;
  if (pipe.chunked() && staged_send) {
    // Device sender: pipeline [DtoH, wire] per chunk. Each chunk stages
    // through its own pinned bounce buffer, released as soon as the next
    // chunk's buffer is in hand — peak staging memory is ~2 chunks, not
    // the full message (double buffering).
    const sim::LinkModel dtoh = sim::staging_link(
        *src_node.desc, cmd->buf_dev->desc(), cmd->near);
    const sim::Time dtoh_total =
        sim::chunked_stage_total(dtoh, cmd->bytes, pipe.chunk_bytes);
    account_copy(t, dev::CopyPathKind::kDevToHost, dtoh_total, cmd->bytes);
    if (ob != nullptr) ob->phase_stage_dtoh->record(dtoh_total);
    if (cpg != nullptr) {
      // The chunked staging overlaps the wire; record its busy time as a
      // contiguous node starting at the post (the pipeline's first leg).
      cp_stage = cpg->add(obs::CritCategory::kCopyDtoH, posted,
                          posted + dtoh_total, cmd->cp_pred, cmd->cp_pred2, 0,
                          obs::CritCategory::kSchedStall, t.id, cmd->bytes,
                          "stage dtoh (chunked)");
    }
    PinnedPool::Buffer staged_prev{};
    for (int j = 0; j < pipe.chunks; ++j) {
      const std::uint64_t len = pipe.chunk_len(j, cmd->bytes);
      PinnedPool::Buffer b = src_node.pinned.acquire(len);
      if (trace != nullptr) {
        pinned_peak =
            std::max(pinned_peak, src_node.pinned.stats().bytes_in_use);
      }
      if (functional) {
        const auto* src = static_cast<const unsigned char*>(cmd->buf) +
                          static_cast<std::uint64_t>(j) * pipe.chunk_bytes;
        std::memcpy(b.ptr, src, len);
      }
      src_node.pinned.release(staged_prev);
      staged_prev = b;
    }
    src_node.pinned.release(staged_prev);
    const sim::Time wire_busy = sim::chunked_stage_total(
        sim::wire_link(cluster.fabric), cmd->bytes, pipe.chunk_bytes);
    if (ob != nullptr) ob->phase_wire->record(wire_busy);
    if (!cluster.mpi_thread_multiple) {
      // The per-node MPI lock is held while the NIC is busy: the hold is
      // the wire occupancy of all chunks, not the end-to-end pipeline.
      if (from_task_fiber && cpg != nullptr) cp_serial_before = t.clock.now();
      ready = src_node.serialize_mpi(
          ready, wire_busy + cluster.costs.sync_point_overhead);
      if (from_task_fiber) t.clock.merge(ready);
    }
    wire_occupancy = wire_busy;
    cmd->chunk_split = pipe.chunk_bytes;
    cmd->chunk_arrivals = src_node.nic_transmit_chunked(
        ready, &dtoh, sim::wire_link(cluster.fabric), cmd->bytes,
        pipe.chunk_bytes);
    on_wire_done = cmd->chunk_arrivals.back();
    {
      std::lock_guard<std::mutex> lock(t.stats_mutex);
      t.stats.chunked_msgs += 1;
    }
  } else {
    if (staged_send) {
      const sim::Time pcie = sim::pcie_copy_time(
          *src_node.desc, cmd->buf_dev->desc(), cmd->bytes, cmd->near);
      ready += pcie;
      account_copy(t, dev::CopyPathKind::kDevToHost, pcie, cmd->bytes);
      if (ob != nullptr) ob->phase_stage_dtoh->record(pcie);
      if (cpg != nullptr) {
        cp_stage = cpg->add(obs::CritCategory::kCopyDtoH, posted, ready,
                            cmd->cp_pred, cmd->cp_pred2, 0,
                            obs::CritCategory::kSchedStall, t.id, cmd->bytes,
                            "stage dtoh");
      }
      // The DtoH staging lands in a pre-pinned bounce buffer (section 3.7);
      // the pool recycles them across messages.
      PinnedPool::Buffer b = src_node.pinned.acquire(cmd->bytes);
      if (trace != nullptr) {
        pinned_peak =
            std::max(pinned_peak, src_node.pinned.stats().bytes_in_use);
      }
      src_node.pinned.release(b);
    }
    const sim::Time wire = sim::fabric_time(cluster.fabric, cmd->bytes);
    if (ob != nullptr) ob->phase_wire->record(wire);
    if (!cluster.mpi_thread_multiple) {
      // Without MPI_THREAD_MULTIPLE the runtime serializes internode calls
      // per node: the per-node MPI lock is held across the transfer, so a
      // node's outgoing messages cannot overlap, and a calling task fiber
      // is held until its turn completes (section 3.7).
      if (from_task_fiber && cpg != nullptr) cp_serial_before = t.clock.now();
      ready = src_node.serialize_mpi(
          ready, wire + cluster.costs.sync_point_overhead);
      if (from_task_fiber) t.clock.merge(ready);
    }
    wire_occupancy = wire;
    on_wire_done = src_node.nic_transmit(ready, wire);
    if (pipe.chunked()) {
      // Host sender, but the receiver may still stage to a device: the
      // wire stays one message, yet chunk j's bytes are deliverable once
      // they are off the wire — expose those stream positions so the
      // receiver's HtoD staging can start before the full arrival.
      cmd->chunk_split = pipe.chunk_bytes;
      cmd->chunk_arrivals.reserve(static_cast<std::size_t>(pipe.chunks));
      const double bw = cluster.fabric.link.bandwidth;
      for (int j = 0; j < pipe.chunks; ++j) {
        const std::uint64_t delivered =
            static_cast<std::uint64_t>(j) * pipe.chunk_bytes +
            pipe.chunk_len(j, cmd->bytes);
        cmd->chunk_arrivals.push_back(
            on_wire_done -
            static_cast<double>(cmd->bytes - delivered) / bw);
      }
    }
  }

  if (cpg != nullptr) {
    // Wire node: NIC occupancy ending at arrival. It chains after the
    // staging leg (or directly after the issue-time chains) and, in
    // serialized-MPI mode, after the previous holder of the node's MPI
    // lock — the gap before it is fabric/lock serialization, i.e. wire.
    const std::uint32_t prev =
        cluster.mpi_thread_multiple
            ? 0
            : src_node.cp_mpi_lock.load(std::memory_order_relaxed);
    std::uint32_t p1 = cp_stage;
    std::uint32_t p3 = 0;
    if (cp_stage == 0) {
      p1 = cmd->cp_pred;
      p3 = cmd->cp_pred2;
    }
    cmd->cp_node =
        cpg->add(obs::CritCategory::kWire, on_wire_done - wire_occupancy,
                 on_wire_done, p1, prev, p3, obs::CritCategory::kWire, t.id,
                 cmd->bytes,
                 "wire " + std::to_string(t.id) + "->" +
                     std::to_string(cmd->dst_task));
    if (!cluster.mpi_thread_multiple) {
      src_node.cp_mpi_lock.store(cmd->cp_node, std::memory_order_relaxed);
    }
    if (cp_serial_before >= 0 && t.clock.now() > cp_serial_before) {
      // The calling fiber was held on the per-node MPI lock: record the
      // blocked interval as a join on this message's wire node.
      cp_join(t, cpg, cp_serial_before, cmd->cp_node);
    }
  }

  if (trace != nullptr) {
    // Send-side slice (sender's pid): posted through fully-on-wire, with
    // the flow start that complete_match's finish event links to.
    trace->record(src_node.index, "mpi",
                  "msg " + std::to_string(t.id) + "->" +
                      std::to_string(cmd->dst_task) + " (" +
                      std::to_string(cmd->bytes) + "B)",
                  staged_send ? "internode-send-staged" : "internode-send",
                  posted, on_wire_done);
    if (cmd->span_id != 0) {
      trace->record_flow(true, cmd->span_id, src_node.index, "mpi", "msg",
                         "mpi", posted);
    }
    if (staged_send) {
      // Pinned-pool counter track: staging footprint while this message's
      // chunks were in flight, back to its level afterwards.
      trace->record_counter(src_node.index, "pinned pool bytes", "in_use",
                            posted, static_cast<double>(pinned_peak));
      trace->record_counter(
          src_node.index, "pinned pool bytes", "in_use", on_wire_done,
          static_cast<double>(src_node.pinned.stats().bytes_in_use));
    }
  }

  const bool eager = cmd->bytes <= kEagerBytes && cmd->buf_dev == nullptr &&
                     !cmd->force_rendezvous;
  if (eager) {
    if (functional && cmd->bytes > 0 && cmd->eager_payload.empty()) {
      const auto* p = static_cast<const unsigned char*>(cmd->buf);
      cmd->eager_payload.assign(p, p + cmd->bytes);
    }
    cmd->sender_completed = true;
    if (cmd->req != nullptr) {
      cmd->req->rec.complete(cmd->ready + cluster.costs.mpi_call_overhead,
                             cmd->cp_pred);
    }
  } else {
    // Rendezvous: the receiver's handler completes the sender.
    cmd->remote_sender_req = cmd->req;
    cmd->remote_sender_stream = cmd->stream;
    cmd->remote_sender_node = cmd->stream_node;
    cmd->stream = nullptr;
    cmd->stream_node = nullptr;
    cmd->sender_completed = true;  // receiver uses remote_sender_req
  }

  cmd->kind = MsgCommand::Kind::kIncoming;
  cmd->arrival = on_wire_done;
  cmd->wire_src = cmd->buf;
  dst_node.post(cmd);
}

void route_recv(Task& t, MsgCommand* cmd) { t.node->post(cmd); }

std::uint32_t cp_checkpoint(Task& t, obs::CritPath* cp) {
  if (cp == nullptr) return 0;
  const sim::Time now = t.clock.now();
  // No virtual time elapsed since the last checkpoint: the previous node
  // already ends exactly here, so reuse it instead of appending a
  // zero-length duplicate (tight issue loops hit this every iteration).
  if (now == t.cp_open && t.cp_last != 0) return t.cp_last;
  const std::uint32_t id =
      cp->add(obs::CritCategory::kCompute, t.cp_open, now, t.cp_last, 0, 0,
              obs::CritCategory::kMatchWait, t.id);
  t.cp_last = id;
  t.cp_open = now;
  return id;
}

void cp_join(Task& t, obs::CritPath* cp, sim::Time before,
             std::uint32_t producer) {
  if (cp == nullptr) return;
  const sim::Time now = t.clock.now();
  // The wait never blocked: the producer finished strictly inside the
  // task's own busy period, so the task — not the message — was the
  // rate limiter and the open compute segment just continues. No node.
  if (now == before) return;
  const std::uint32_t seg =
      before == t.cp_open && t.cp_last != 0
          ? t.cp_last
          : cp->add(obs::CritCategory::kCompute, t.cp_open, before, t.cp_last,
                    0, 0, obs::CritCategory::kMatchWait, t.id);
  // Zero-length join node: it pins the walk's frontier at `now`, books the
  // blocked interval [producer end, frontier] as match_wait, and descends
  // into whichever of {own segment, producer} finished last — entering the
  // producer's subtree (wire, staging copies) at its completion time.
  const std::uint32_t join =
      cp->add(obs::CritCategory::kMatchWait, now, now, seg, producer, 0,
              obs::CritCategory::kMatchWait, t.id);
  t.cp_last = join;
  t.cp_open = now;
}

namespace {

/// Unwind the task with FaultAbort — but only after every handler has
/// acknowledged the fault and stopped executing work. Matches and stream
/// ops hold raw pointers into task-fiber stacks (receive buffers,
/// kernel-body captures); the handshake guarantees no handler touches
/// them after the stack dies.
[[noreturn]] void ft_unwind(Task& t) {
  while (!t.rt->ft_handlers_done()) {
    t.rt->wake_all_handlers();
    t.rt->scheduler().yield();
  }
  throw FaultAbort{};
}

}  // namespace

void ft_check(Task& t) {
  FtState* ft = t.rt->ft();
  if (ft == nullptr) return;
  ft->observe(t.clock.now());
  if (ft->fired()) ft_unwind(t);
}

sim::Time ft_wait(Task& t, dev::CompletionRecord& rec) {
  FtState* ft = t.rt->ft();
  if (ft == nullptr) return rec.wait();
  sim::Time done = 0;
  while (!rec.poll(&done)) {
    ft->observe(t.clock.now());
    if (ft->fired()) ft_unwind(t);
    t.rt->scheduler().yield();
  }
  return done;
}

void wd_register(Task& t, const char* site, int context, int peer, int tag,
                 std::uint64_t bytes) {
  if (!t.rt->watchdog_enabled()) return;
  t.wd_lock.lock();
  t.wd_site = site;
  t.wd_context = context;
  t.wd_peer = peer;
  t.wd_tag = tag;
  t.wd_bytes = bytes;
  t.wd_lock.unlock();
}

void wd_clear(Task& t) {
  if (!t.rt->watchdog_enabled()) return;
  t.wd_lock.lock();
  t.wd_site = nullptr;
  t.wd_lock.unlock();
}

void submit_stream_op(Task& t, int async_id, dev::StreamOp op) {
  t.clock.advance(t.costs().queue_op_overhead);
  op.enqueue_time = t.clock.now();
  dev::Stream* s = t.device->stream(async_id);
  if (t.rt->trace() != nullptr) s->set_trace(t.rt->trace(), t.node->index);
  if (obs::CritPath* cpg = t.rt->critpath()) {
    s->set_critpath(cpg);
    op.cp_pred = cp_checkpoint(t, cpg);
  }
  if (s->enqueue(std::move(op))) t.node->schedule_stream(s);
}

sim::Time sync_stream_op(Task& t, int async_id, dev::StreamOp op) {
  dev::CompletionRecord rec;
  IMPACC_CHECK_MSG(op.completion == nullptr, "sync op already has completion");
  op.completion = &rec;
  const char* site = op.kind == dev::StreamOp::Kind::kMarker
                         ? "acc wait (queue drain)"
                         : "stream sync";
  submit_stream_op(t, async_id, std::move(op));
  wd_register(t, site, 0, -1, -1, 0);
  const sim::Time done = ft_wait(t, rec);
  wd_clear(t);
  if (obs::CritPath* cpg = t.rt->critpath()) {
    const sim::Time before = t.clock.now();
    t.clock.merge(done);
    cp_join(t, cpg, before, rec.cp());
  } else {
    t.clock.merge(done);
  }
  return done;
}

void wait_stream(Task& t, int async_id) {
  dev::Stream* s = t.device->stream(async_id);
  if (s->idle()) {
    t.clock.advance(t.costs().sync_point_overhead);
    if (obs::CritPath* cpg = t.rt->critpath()) {
      const sim::Time before = t.clock.now();
      t.clock.merge(s->now());
      if (t.clock.now() > before) cp_join(t, cpg, before, s->cp_last());
    } else {
      t.clock.merge(s->now());
    }
    return;
  }
  dev::StreamOp marker;
  marker.kind = dev::StreamOp::Kind::kMarker;
  marker.label = "acc wait";
  sync_stream_op(t, async_id, std::move(marker));
  t.clock.advance(t.costs().sync_point_overhead);
}

}  // namespace impacc::core
