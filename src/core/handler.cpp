#include "core/handler.h"

#include <cstring>

#include "common/log.h"
#include "dev/copyengine.h"
#include "mpi/datatype.h"
#include "sim/costmodel.h"
#include "sim/netmodel.h"

namespace impacc::core {

namespace {

/// Account one completed MPI initiation back to its activity queue.
void resume_stream(MsgCommand* cmd, sim::Time t) {
  if (cmd->stream == nullptr) return;
  if (cmd->stream->complete_inflight(t)) {
    cmd->stream_node->schedule_stream(cmd->stream);
  }
}

void add_copy_stat(TaskStats& stats, dev::CopyPathKind kind, sim::Time cost) {
  stats.copy_time[static_cast<std::size_t>(kind)] += cost;
  stats.copy_count[static_cast<std::size_t>(kind)] += 1;
}

/// Complete a matched pair. `snd` is kSend or kIncoming, `rcv` is kRecv.
void complete_match(NodeRt& n, MsgCommand* snd, MsgCommand* rcv) {
  Runtime* rt = n.rt;
  const std::uint64_t bytes = snd->bytes;
  IMPACC_CHECK_MSG(bytes <= rcv->bytes, "message truncation (recv too small)");
  const bool functional = rt->functional();
  Task& recv_task = rt->task(rcv->dst_task);
  const sim::RuntimeCosts& costs = rt->options().cluster.costs;

  sim::Time done = 0;
  if (snd->kind == MsgCommand::Kind::kIncoming) {
    // Pending internode message: data hit this node at snd->arrival; the
    // handler writes device-resident receive buffers after completion of
    // the non-blocking transfer (section 3.7). The pending-queue handling
    // is IMPACC machinery — the baseline's processes receive directly —
    // and is the source of the paper's small LULESH regression on Beacon.
    sim::Time cost = rt->is_impacc() ? costs.handler_command_overhead : 0;
    if (rcv->buf_dev != nullptr && !rt->rdma_enabled()) {
      const sim::Time pcie = sim::pcie_copy_time(
          *n.desc, rcv->buf_dev->desc(), bytes, rcv->near);
      cost += pcie;
      add_copy_stat(recv_task.stats, dev::CopyPathKind::kHostToDev, pcie);
    }
    done = std::max(snd->arrival, rcv->ready) + cost;
    if (functional && bytes > 0) {
      const void* src = snd->eager_payload.empty() ? snd->wire_src
                                                   : snd->eager_payload.data();
      if (mpi::is_derived(rcv->recv_dtype)) {
        mpi::type_unpack(rcv->buf, src,
                         static_cast<int>(bytes / mpi::type_size(rcv->recv_dtype)),
                         rcv->recv_dtype);
      } else {
        std::memcpy(rcv->buf, src, bytes);
      }
    }
  } else {
    // Intra-node pair: try node heap aliasing, else fuse into one copy.
    bool aliased = false;
    if (rt->is_impacc() && rt->features().heap_aliasing &&
        snd->readonly_hint && rcv->readonly_hint &&
        rcv->recv_ptr_addr != nullptr && snd->buf_dev == nullptr &&
        rcv->buf_dev == nullptr && snd->eager_payload.empty() &&
        !mpi::is_derived(rcv->recv_dtype)) {
      aliased = n.heap.alias(rcv->recv_ptr_addr, rcv->buf, bytes, snd->buf);
    }
    const sim::Time t0 = std::max(snd->ready, rcv->ready);
    if (aliased) {
      done = t0 + 2 * costs.handler_command_overhead;
      recv_task.stats.heap_aliases += 1;
    } else {
      dev::IntraCopyPlan plan;
      if (rt->is_impacc() && rt->features().message_fusion) {
        plan = dev::plan_fused_copy(*n.desc, costs, snd->buf_dev, rcv->buf_dev,
                                    bytes, snd->near, rcv->near,
                                    rt->features().peer_dtod);
      } else {
        // Baseline process model / fusion ablation: stage through shared
        // memory, with PCIe legs for any device-resident side.
        plan = dev::plan_unfused_copy(*n.desc, costs, snd->buf_dev,
                                      rcv->buf_dev, bytes, snd->near,
                                      rcv->near);
      }
      done = t0 + plan.cost;
      add_copy_stat(recv_task.stats, plan.kind, plan.cost);
      if (functional && bytes > 0) {
        const void* src = snd->eager_payload.empty()
                              ? snd->buf
                              : snd->eager_payload.data();
        if (mpi::is_derived(rcv->recv_dtype)) {
          mpi::type_unpack(
              rcv->buf, src,
              static_cast<int>(bytes / mpi::type_size(rcv->recv_dtype)),
              rcv->recv_dtype);
        } else {
          std::memmove(rcv->buf, src, bytes);
        }
      }
    }
  }

  if (sim::TraceSink* trace = rt->trace()) {
    const sim::Time start =
        std::max(snd->kind == MsgCommand::Kind::kIncoming ? snd->arrival
                                                          : snd->ready,
                 rcv->ready);
    trace->record(
        n.index, "mpi",
        "msg " + std::to_string(snd->src_task) + "->" +
            std::to_string(rcv->dst_task) + " (" +
            std::to_string(bytes) + "B)",
        snd->kind == MsgCommand::Kind::kIncoming ? "internode" : "intranode",
        start, done);
  }

  // Receive status + completions.
  if (rcv->req != nullptr) {
    rcv->req->status.source = snd->src_comm_rank;
    rcv->req->status.tag = snd->tag;
    rcv->req->status.bytes = bytes;
    rcv->req->rec.complete(done);
  }
  recv_task.stats.msgs_recv += 1;
  if (!snd->sender_completed && snd->req != nullptr) {
    snd->req->rec.complete(done);
  }
  if (snd->remote_sender_req != nullptr) {
    snd->remote_sender_req->rec.complete(done);
  }
  if (snd->remote_sender_stream != nullptr) {
    if (snd->remote_sender_stream->complete_inflight(done)) {
      snd->remote_sender_node->schedule_stream(snd->remote_sender_stream);
    }
  }
  resume_stream(snd, done);
  resume_stream(rcv, done);
  delete snd;
  delete rcv;
}

/// Answer a probe against a pending send (MPI_Probe/Iprobe semantics:
/// status is filled but the message stays queued).
void complete_probe(NodeRt& n, MsgCommand* probe, const MsgCommand* send) {
  const sim::Time ready = send->kind == MsgCommand::Kind::kIncoming
                              ? send->arrival
                              : send->ready;
  const sim::Time done = std::max(probe->ready, ready) +
                         n.rt->options().cluster.costs.mpi_call_overhead;
  probe->req->status.source = send->src_comm_rank;
  probe->req->status.tag = send->tag;
  probe->req->status.bytes = send->bytes;
  probe->req->probe_found = true;
  probe->req->rec.complete(done);
  delete probe;
}

void handle_probe(NodeRt& n, MsgCommand* probe) {
  if (const MsgCommand* send = n.matcher.find_pending_send(*probe)) {
    complete_probe(n, probe, send);
    return;
  }
  if (probe->probe_blocking) {
    n.matcher.store_probe(probe);
    return;
  }
  // Iprobe: answer "nothing pending" from the current state.
  probe->req->probe_found = false;
  probe->req->rec.complete(probe->ready +
                           n.rt->options().cluster.costs.mpi_call_overhead);
  delete probe;
}

}  // namespace

void handler_main(NodeRt* node) {
  NodeRt& n = *node;
  const bool functional = n.rt->functional();
  for (;;) {
    bool progress = false;
    // Drain the in-order command queue.
    while (MpscNode* raw = n.queue.pop()) {
      progress = true;
      auto* cmd = static_cast<MsgCommand*>(raw);
      if (cmd->kind == MsgCommand::Kind::kProbe) {
        handle_probe(n, cmd);
        continue;
      }
      MsgCommand* partner = n.matcher.submit(cmd);
      if (partner != nullptr) {
        MsgCommand* snd =
            cmd->kind == MsgCommand::Kind::kRecv ? partner : cmd;
        MsgCommand* rcv = cmd->kind == MsgCommand::Kind::kRecv ? cmd : partner;
        complete_match(n, snd, rcv);
      } else if (cmd->kind != MsgCommand::Kind::kRecv) {
        // A send just became pending: wake any parked probes it satisfies.
        for (MsgCommand* p : n.matcher.take_matching_probes(*cmd)) {
          complete_probe(n, p, cmd);
        }
      }
    }
    // Advance runnable activity queues.
    for (;;) {
      n.astream_lock.lock();
      if (n.active_streams.empty()) {
        n.astream_lock.unlock();
        break;
      }
      dev::Stream* s = n.active_streams.front();
      n.active_streams.pop_front();
      n.astream_lock.unlock();
      progress = true;
      s->advance(functional);
    }
    if (!progress) {
      if (n.shutdown.load(std::memory_order_acquire) && n.queue.empty_hint()) {
        if (!n.matcher.drained()) {
          IMPACC_LOG_WARN(
              "node %d handler exiting with unmatched messages "
              "(application did not complete all communication)",
              n.index);
        }
        return;
      }
      n.wake.wait_and_reset();
    }
  }
}

void route_send(Task& t, MsgCommand* cmd, bool from_task_fiber) {
  Runtime* rt = t.rt;
  NodeRt& src_node = *t.node;
  Task& dst_task = rt->task(cmd->dst_task);
  NodeRt& dst_node = *dst_task.node;
  const bool functional = rt->functional();
  const sim::ClusterDesc& cluster = rt->options().cluster;

  if (&dst_node == &src_node) {
    // Intra-node. Eager small host messages complete the sender right
    // away; everything else rendezvouses at match time. readonly-hinted
    // sends stay rendezvous so heap aliasing can see the original buffer.
    const bool eager = cmd->bytes <= kEagerBytes && cmd->buf_dev == nullptr &&
                       !cmd->readonly_hint && !cmd->force_rendezvous;
    if (eager) {
      if (functional && cmd->bytes > 0 && cmd->eager_payload.empty()) {
        const auto* p = static_cast<const unsigned char*>(cmd->buf);
        cmd->eager_payload.assign(p, p + cmd->bytes);
      }
      cmd->sender_completed = true;
      if (cmd->req != nullptr) {
        cmd->req->rec.complete(
            cmd->ready + sim::host_copy_time(*src_node.desc, cmd->bytes));
      }
    }
    src_node.post(cmd);
    return;
  }

  // Internode. Sender-side staging (async DtoH into pinned memory +
  // callback chaining into the underlying MPI_Isend) happens before the
  // wire unless the fabric reads device memory directly.
  sim::Time ready = cmd->ready;
  if (cmd->buf_dev != nullptr && !rt->rdma_enabled()) {
    const sim::Time pcie = sim::pcie_copy_time(
        *src_node.desc, cmd->buf_dev->desc(), cmd->bytes, cmd->near);
    ready += pcie;
    add_copy_stat(t.stats, dev::CopyPathKind::kDevToHost, pcie);
    // The DtoH staging lands in a pre-pinned bounce buffer (section 3.7);
    // the pool recycles them across messages.
    src_node.pinned.release(src_node.pinned.acquire(cmd->bytes));
  }
  const sim::Time wire = sim::fabric_time(cluster.fabric, cmd->bytes);
  if (!cluster.mpi_thread_multiple) {
    // Without MPI_THREAD_MULTIPLE the runtime serializes internode calls
    // per node: the per-node MPI lock is held across the transfer, so a
    // node's outgoing messages cannot overlap, and a calling task fiber
    // is held until its turn completes (section 3.7).
    ready = src_node.serialize_mpi(
        ready, wire + cluster.costs.sync_point_overhead);
    if (from_task_fiber) t.clock.merge(ready);
  }
  const sim::Time on_wire_done = src_node.nic_transmit(ready, wire);

  const bool eager = cmd->bytes <= kEagerBytes && cmd->buf_dev == nullptr &&
                     !cmd->force_rendezvous;
  if (eager) {
    if (functional && cmd->bytes > 0 && cmd->eager_payload.empty()) {
      const auto* p = static_cast<const unsigned char*>(cmd->buf);
      cmd->eager_payload.assign(p, p + cmd->bytes);
    }
    cmd->sender_completed = true;
    if (cmd->req != nullptr) {
      cmd->req->rec.complete(cmd->ready +
                             cluster.costs.mpi_call_overhead);
    }
  } else {
    // Rendezvous: the receiver's handler completes the sender.
    cmd->remote_sender_req = cmd->req;
    cmd->remote_sender_stream = cmd->stream;
    cmd->remote_sender_node = cmd->stream_node;
    cmd->stream = nullptr;
    cmd->stream_node = nullptr;
    cmd->sender_completed = true;  // receiver uses remote_sender_req
  }

  cmd->kind = MsgCommand::Kind::kIncoming;
  cmd->arrival = on_wire_done;
  cmd->wire_src = cmd->buf;
  dst_node.post(cmd);
}

void route_recv(Task& t, MsgCommand* cmd) { t.node->post(cmd); }

void submit_stream_op(Task& t, int async_id, dev::StreamOp op) {
  t.clock.advance(t.costs().queue_op_overhead);
  op.enqueue_time = t.clock.now();
  dev::Stream* s = t.device->stream(async_id);
  if (t.rt->trace() != nullptr) s->set_trace(t.rt->trace(), t.node->index);
  if (s->enqueue(std::move(op))) t.node->schedule_stream(s);
}

sim::Time sync_stream_op(Task& t, int async_id, dev::StreamOp op) {
  dev::CompletionRecord rec;
  IMPACC_CHECK_MSG(op.completion == nullptr, "sync op already has completion");
  op.completion = &rec;
  submit_stream_op(t, async_id, std::move(op));
  const sim::Time done = rec.wait();
  t.clock.merge(done);
  return done;
}

void wait_stream(Task& t, int async_id) {
  dev::Stream* s = t.device->stream(async_id);
  if (s->idle()) {
    t.clock.advance(t.costs().sync_point_overhead);
    t.clock.merge(s->now());
    return;
  }
  dev::StreamOp marker;
  marker.kind = dev::StreamOp::Kind::kMarker;
  marker.label = "acc wait";
  sync_stream_op(t, async_id, std::move(marker));
  t.clock.advance(t.costs().sync_point_overhead);
}

}  // namespace impacc::core
