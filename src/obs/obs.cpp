#include "obs/obs.h"

#include "dev/copyengine.h"

namespace impacc::obs {

MetricsConfig parse_metrics_spec(const std::string& spec) {
  MetricsConfig cfg;
  const std::size_t comma = spec.rfind(',');
  if (comma != std::string::npos) {
    const std::string fmt = spec.substr(comma + 1);
    if (fmt == "json") {
      cfg.format = SnapshotFormat::kJson;
      cfg.path = spec.substr(0, comma);
      return cfg;
    }
    if (fmt == "prom" || fmt == "prometheus") {
      cfg.format = SnapshotFormat::kPrometheus;
      cfg.path = spec.substr(0, comma);
      return cfg;
    }
    // Unknown suffix: treat the whole spec as a path (a filename may
    // legitimately contain a comma).
  }
  cfg.path = spec;
  return cfg;
}

Observability::Observability(MetricsConfig config)
    : config_(std::move(config)) {
  msg_bytes = registry_.histogram("mpi.msg.bytes", HistUnit::kBytes);
  phase_stage_dtoh = registry_.histogram("mpi.msg.phase.stage_dtoh");
  phase_wire = registry_.histogram("mpi.msg.phase.wire");
  phase_match_wait = registry_.histogram("mpi.msg.phase.match_wait");
  phase_stage_htod = registry_.histogram("mpi.msg.phase.stage_htod");
  phase_total = registry_.histogram("mpi.msg.phase.total");
  mpi_wait = registry_.histogram("mpi.wait.seconds");
  msgs_internode = registry_.counter("mpi.msgs.internode");
  msgs_intranode = registry_.counter("mpi.msgs.intranode");
  probes = registry_.counter("mpi.probes");

  for (int i = 0; i < 6; ++i) {
    const std::string slug =
        dev::copy_path_slug(static_cast<dev::CopyPathKind>(i));
    copy_seconds[i] = registry_.histogram("dev.copy." + slug + ".seconds");
    copy_bytes[i] =
        registry_.histogram("dev.copy." + slug + ".bytes", HistUnit::kBytes);
  }
  kernel_seconds = registry_.histogram("acc.kernel.seconds");
  ready_fibers =
      registry_.histogram("ult.sched.ready_fibers", HistUnit::kCount);
}

}  // namespace impacc::obs
