#include "obs/obs.h"

#include "dev/copyengine.h"

namespace impacc::obs {

MetricsConfig parse_metrics_spec(const std::string& spec) {
  MetricsConfig cfg;
  const std::size_t comma = spec.rfind(',');
  if (comma != std::string::npos) {
    const std::string fmt = spec.substr(comma + 1);
    if (fmt == "json") {
      cfg.format = SnapshotFormat::kJson;
      cfg.path = spec.substr(0, comma);
      return cfg;
    }
    if (fmt == "prom" || fmt == "prometheus") {
      cfg.format = SnapshotFormat::kPrometheus;
      cfg.path = spec.substr(0, comma);
      return cfg;
    }
    // Unknown suffix: treat the whole spec as a path (a filename may
    // legitimately contain a comma).
  }
  cfg.path = spec;
  return cfg;
}

Observability::Observability(MetricsConfig config)
    : config_(std::move(config)) {
  msg_bytes = registry_.histogram("mpi.msg.bytes", HistUnit::kBytes);
  phase_stage_dtoh = registry_.histogram("mpi.msg.phase.stage_dtoh");
  phase_wire = registry_.histogram("mpi.msg.phase.wire");
  phase_match_wait = registry_.histogram("mpi.msg.phase.match_wait");
  phase_stage_htod = registry_.histogram("mpi.msg.phase.stage_htod");
  phase_total = registry_.histogram("mpi.msg.phase.total");
  mpi_wait = registry_.histogram("mpi.wait.seconds");
  msgs_internode = registry_.counter("mpi.msgs.internode");
  msgs_intranode = registry_.counter("mpi.msgs.intranode");
  probes = registry_.counter("mpi.probes");
  handler_batch_size =
      registry_.histogram("handler.batch.size", HistUnit::kCount);
  handler_queue_depth = registry_.gauge("handler.queue.depth");
  matcher_fastpath = registry_.counter("matcher.fastpath.hits");

  for (int i = 0; i < 6; ++i) {
    const std::string slug =
        dev::copy_path_slug(static_cast<dev::CopyPathKind>(i));
    copy_seconds[i] = registry_.histogram("dev.copy." + slug + ".seconds");
    copy_bytes[i] =
        registry_.histogram("dev.copy." + slug + ".bytes", HistUnit::kBytes);
  }
  kernel_seconds = registry_.histogram("acc.kernel.seconds");
  ready_fibers =
      registry_.histogram("ult.sched.ready_fibers", HistUnit::kCount);

  for (int k = 0; k < static_cast<int>(CollKind::kCount); ++k) {
    coll_seconds[k] = registry_.histogram(
        std::string("coll.") + coll_kind_slug(static_cast<CollKind>(k)) +
        ".seconds");
  }
  coll_internode_bytes = registry_.counter("coll.internode.bytes");
  coll_internode_msgs = registry_.counter("coll.internode.msgs");
}

const char* coll_kind_slug(CollKind k) {
  switch (k) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kBcast: return "bcast";
    case CollKind::kReduce: return "reduce";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kGather: return "gather";
    case CollKind::kGatherv: return "gatherv";
    case CollKind::kScatter: return "scatter";
    case CollKind::kScatterv: return "scatterv";
    case CollKind::kAllgather: return "allgather";
    case CollKind::kReduceScatter: return "reduce_scatter";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kScan: return "scan";
    case CollKind::kCount: break;
  }
  return "unknown";
}

}  // namespace impacc::obs
