// Runtime observability: the metrics registry.
//
// One thread-safe registry per Runtime holds named counters, gauges, and
// fixed-bucket histograms, registered by subsystem ("mpi.*",
// "acc.present_table.*", "core.pinned_pool.*", "ult.sched.*", "dev.copy.*").
// Instrumentation sites hold typed handles resolved once at startup, so a
// hot-path update is a single relaxed atomic add — and when observability
// is disabled entirely, sites skip even that behind one pointer-null test.
//
// Snapshots flatten everything into a sorted name -> value list that the
// exporters serialize as a flat JSON object (diff-friendly; see
// tools/metrics_diff.sh) or Prometheus text exposition.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace impacc::obs {

enum class MetricKind : int { kCounter = 0, kGauge, kHistogram };

/// Monotonic event count. Updates are relaxed atomics: totals are exact,
/// ordering against other metrics is not promised.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (set) or running sum (add) of a double.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// What a histogram's samples measure; sets the geometric bucket base so
/// the fixed bucket count covers the interesting range with ~2x resolution.
enum class HistUnit : int {
  kSeconds = 0,  // latencies: buckets from 1 ns up
  kBytes,        // sizes: buckets from 1 byte up
  kCount,        // dimensionless: queue depths, chunk counts, ...
};

struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  // 0 when count == 0
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Fixed-bucket (power-of-two geometric) histogram. Recording is lock-free
/// (relaxed atomics per bucket); percentiles are interpolated within the
/// matched bucket at snapshot time, clamped to the observed min/max.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  explicit Histogram(HistUnit unit);

  void record(double v);
  HistogramSummary summarize() const;
  HistUnit unit() const { return unit_; }

 private:
  int bucket_index(double v) const;
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  HistUnit unit_;
  double base_;  // lower edge of bucket 1; bucket 0 is [0, base_)
  std::atomic<std::uint64_t> counts_[kBuckets];
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
};

enum class SnapshotFormat : int { kJson = 0, kPrometheus };

/// Point-in-time copy of every registered metric, flattened for export.
/// Histograms contribute derived sub-values addressable as
/// "<name>.count|sum|min|max|p50|p95|p99" through value().
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kGauge;
    double value = 0;  // counter (as double) or gauge
    HistogramSummary hist;
  };

  std::vector<Entry> entries;  // sorted by name

  bool empty() const { return entries.empty(); }
  const Entry* find(const std::string& name) const;

  /// Look a value up by flattened name; histogram sub-values use the
  /// ".sum"-style suffixes above. Returns `fallback` when absent.
  double value(const std::string& name, double fallback = 0) const;

  /// Flat JSON object, keys sorted, one "name": value per line.
  std::string to_json() const;

  /// Prometheus text exposition; dots in names become underscores and
  /// histograms export as summaries (quantile series + _sum/_count).
  std::string to_prometheus() const;

  /// Serialize in `format` to `path`; returns false on I/O failure.
  bool write_file(const std::string& path, SnapshotFormat format) const;
};

/// Thread-safe name -> metric table. Handles returned by the accessors
/// stay valid for the registry's lifetime; re-registering a name returns
/// the existing metric (and aborts on a kind mismatch — two subsystems
/// disagreeing about a name is a bug worth failing loudly on).
class Registry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       HistUnit unit = HistUnit::kSeconds);

  MetricsSnapshot snapshot() const;

 private:
  struct Slot {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Slot> slots_;
};

}  // namespace impacc::obs
