#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/types.h"

namespace impacc::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double unit_base(HistUnit u) {
  switch (u) {
    case HistUnit::kSeconds: return 1e-9;  // sub-ns is one bucket
    case HistUnit::kBytes: return 1.0;
    case HistUnit::kCount: return 1.0;
  }
  return 1.0;
}

/// Shortest-ish round-trippable double. %.12g keeps virtual times exact to
/// picoseconds and byte counts exact to 2^39, plenty for diffing.
std::string format_number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + sizeof("impacc_") - 1);
  out += "impacc_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(HistUnit unit) : unit_(unit), base_(unit_base(unit)) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

int Histogram::bucket_index(double v) const {
  if (!(v >= base_)) return 0;  // also catches NaN and negatives
  const int i = 1 + static_cast<int>(std::floor(std::log2(v / base_)));
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_lo(int i) const {
  return i == 0 ? 0.0 : base_ * std::exp2(i - 1);
}

double Histogram::bucket_hi(int i) const { return base_ * std::exp2(i); }

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min_double(min_, v);
  atomic_max_double(max_, v);
}

HistogramSummary Histogram::summarize() const {
  HistogramSummary s;
  std::uint64_t counts[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);

  const auto quantile = [&](double q) {
    const double target = q * static_cast<double>(s.count);
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      const double prev = static_cast<double>(cum);
      cum += counts[i];
      if (static_cast<double>(cum) >= target) {
        // Linear interpolation inside the matched bucket.
        const double frac =
            (target - prev) / static_cast<double>(counts[i]);
        const double lo = bucket_lo(i);
        const double hi = bucket_hi(i);
        return std::clamp(lo + frac * (hi - lo), s.min, s.max);
      }
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

// --- Registry ---------------------------------------------------------------

Counter* Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& s = slots_[name];
  if (s.counter == nullptr) {
    IMPACC_CHECK_MSG(s.gauge == nullptr && s.histogram == nullptr,
                     "metric re-registered with a different kind");
    s.kind = MetricKind::kCounter;
    s.counter = std::make_unique<Counter>();
  }
  return s.counter.get();
}

Gauge* Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& s = slots_[name];
  if (s.gauge == nullptr) {
    IMPACC_CHECK_MSG(s.counter == nullptr && s.histogram == nullptr,
                     "metric re-registered with a different kind");
    s.kind = MetricKind::kGauge;
    s.gauge = std::make_unique<Gauge>();
  }
  return s.gauge.get();
}

Histogram* Registry::histogram(const std::string& name, HistUnit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& s = slots_[name];
  if (s.histogram == nullptr) {
    IMPACC_CHECK_MSG(s.counter == nullptr && s.gauge == nullptr,
                     "metric re-registered with a different kind");
    s.kind = MetricKind::kHistogram;
    s.histogram = std::make_unique<Histogram>(unit);
  }
  IMPACC_CHECK_MSG(s.histogram->unit() == unit,
                   "histogram re-registered with a different unit");
  return s.histogram.get();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.entries.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // std::map: already sorted
    MetricsSnapshot::Entry e;
    e.name = name;
    e.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(slot.counter->value());
        break;
      case MetricKind::kGauge:
        e.value = slot.gauge->value();
        break;
      case MetricKind::kHistogram:
        e.hist = slot.histogram->summarize();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

// --- MetricsSnapshot --------------------------------------------------------

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    const std::string& name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, const std::string& n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

double MetricsSnapshot::value(const std::string& name, double fallback) const {
  if (const Entry* e = find(name)) {
    if (e->kind == MetricKind::kHistogram) return fallback;
    return e->value;
  }
  const std::size_t dot = name.rfind('.');
  if (dot == std::string::npos) return fallback;
  const Entry* e = find(name.substr(0, dot));
  if (e == nullptr || e->kind != MetricKind::kHistogram) return fallback;
  const std::string field = name.substr(dot + 1);
  const HistogramSummary& h = e->hist;
  if (field == "count") return static_cast<double>(h.count);
  if (field == "sum") return h.sum;
  if (field == "min") return h.min;
  if (field == "max") return h.max;
  if (field == "p50") return h.p50;
  if (field == "p95") return h.p95;
  if (field == "p99") return h.p99;
  return fallback;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n";
  bool first = true;
  const auto emit = [&](const std::string& name, double v) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + name + "\": " + format_number(v);
  };
  for (const Entry& e : entries) {
    if (e.kind == MetricKind::kHistogram) {
      emit(e.name + ".count", static_cast<double>(e.hist.count));
      emit(e.name + ".max", e.hist.max);
      emit(e.name + ".min", e.hist.min);
      emit(e.name + ".p50", e.hist.p50);
      emit(e.name + ".p95", e.hist.p95);
      emit(e.name + ".p99", e.hist.p99);
      emit(e.name + ".sum", e.hist.sum);
    } else {
      emit(e.name, e.value);
    }
  }
  out += "\n}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const Entry& e : entries) {
    const std::string pname = prometheus_name(e.name);
    switch (e.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + pname + " counter\n";
        out += pname + " " + format_number(e.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + pname + " gauge\n";
        out += pname + " " + format_number(e.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + pname + " summary\n";
        out += pname + "{quantile=\"0.5\"} " + format_number(e.hist.p50) + "\n";
        out += pname + "{quantile=\"0.95\"} " + format_number(e.hist.p95) + "\n";
        out += pname + "{quantile=\"0.99\"} " + format_number(e.hist.p99) + "\n";
        out += pname + "_sum " + format_number(e.hist.sum) + "\n";
        out += pname + "_count " +
               format_number(static_cast<double>(e.hist.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

bool MetricsSnapshot::write_file(const std::string& path,
                                 SnapshotFormat format) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text =
      format == SnapshotFormat::kJson ? to_json() : to_prometheus();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace impacc::obs
