// Per-Runtime observability bundle.
//
// Owns the metrics Registry plus the typed handles the hot instrumentation
// sites use (resolved once here so no site pays a name lookup), and hands
// out message-span ids for the flow events that link send- and recv-side
// trace rows (docs/OBSERVABILITY.md).
//
// The Runtime creates one of these when tracing or metrics export is
// enabled (LaunchOptions::metrics_path / IMPACC_METRICS / IMPACC_TRACE);
// otherwise Runtime::obs() stays nullptr and every site reduces to a
// single pointer test.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace impacc::obs {

/// Parsed IMPACC_METRICS / LaunchOptions::metrics_path spec:
/// "path[,format]" with format "json" (default) or "prom"/"prometheus".
/// Path "-" keeps the snapshot in memory only (LaunchResult::metrics).
struct MetricsConfig {
  std::string path;  // empty = no file export
  SnapshotFormat format = SnapshotFormat::kJson;
};

MetricsConfig parse_metrics_spec(const std::string& spec);

/// Collective kinds instrumented with per-call virtual-time histograms
/// (coll.<slug>.seconds). Nested collectives (e.g. the flat allreduce's
/// internal reduce+bcast) record under their own kind as well.
enum class CollKind : int {
  kBarrier = 0,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kGatherv,
  kScatter,
  kScatterv,
  kAllgather,
  kReduceScatter,
  kAlltoall,
  kScan,
  kCount,
};

const char* coll_kind_slug(CollKind k);

class Observability {
 public:
  explicit Observability(MetricsConfig config);

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  Registry& registry() { return registry_; }
  const MetricsConfig& config() const { return config_; }

  /// Fresh nonzero message-span id (shared by the send/recv trace rows of
  /// one internode message and its ph:"s"/"f" flow pair).
  std::uint64_t next_span_id() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  // Hot-path handles (never null). Message lifecycle phases:
  Histogram* msg_bytes;          // mpi.msg.bytes — matched message sizes
  Histogram* phase_stage_dtoh;   // sender DtoH staging time per message
  Histogram* phase_wire;         // fabric occupancy per message
  Histogram* phase_match_wait;   // arrival -> recv-posted wait
  Histogram* phase_stage_htod;   // receiver HtoD staging time per message
  Histogram* phase_total;        // send enqueue -> receive complete
  Histogram* mpi_wait;           // mpi.wait.seconds — blocked task time
  Counter* msgs_internode;
  Counter* msgs_intranode;
  Counter* probes;

  // Handler ring pipeline (DESIGN.md section 9). Batch-size samples, the
  // queue depth observed at each batch boundary, and the matcher submits
  // resolved by the exact-key hash buckets without a linear scan.
  Histogram* handler_batch_size;  // handler.batch.size
  Gauge* handler_queue_depth;     // handler.queue.depth
  Counter* matcher_fastpath;      // matcher.fastpath.hits

  // Copy accounting, indexed by dev::CopyPathKind's integer value. Every
  // TaskStats copy_time update goes through core::account_copy, which also
  // records here — so histogram sums reconcile with the stats by
  // construction.
  Histogram* copy_seconds[6];
  Histogram* copy_bytes[6];
  Histogram* kernel_seconds;   // acc.kernel.seconds
  Histogram* ready_fibers;     // ult.sched.ready_fibers (run-queue depth)

  // Collective instrumentation: per-kind call-duration histograms (virtual
  // seconds from entry to completion on the calling rank) and the bytes
  // collectives hand to legs whose peer lives on another node. The byte
  // counter is what the hierarchy tests assert against: node-aware
  // algorithms put each payload on the fabric at most once per node.
  Histogram* coll_seconds[static_cast<int>(CollKind::kCount)];
  Counter* coll_internode_bytes;  // coll.internode.bytes
  Counter* coll_internode_msgs;   // coll.internode.msgs

 private:
  MetricsConfig config_;
  Registry registry_;
  std::atomic<std::uint64_t> next_span_{1};
};

}  // namespace impacc::obs
