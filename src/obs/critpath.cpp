#include "obs/critpath.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/types.h"

namespace impacc::obs {

namespace {

constexpr const char* kSlugs[kCritCategoryCount] = {
    "compute",
    "kernel",
    // Copy slugs mirror dev::copy_path_slug(), same order as CopyPathKind.
    "copy.htoh",
    "copy.htod",
    "copy.dtoh",
    "copy.dtod_peer",
    "copy.dtod_staged",
    "copy.ipc_staged",
    "wire",
    "match_wait",
    "handler",
    "sched_stall",
};

}  // namespace

const char* crit_category_slug(CritCategory c) {
  const int i = static_cast<int>(c);
  IMPACC_CHECK(i >= 0 && i < kCritCategoryCount);
  return kSlugs[i];
}

CritCategory crit_copy_category(int copy_path) {
  IMPACC_CHECK(copy_path >= 0 && copy_path < 6);
  return static_cast<CritCategory>(static_cast<int>(CritCategory::kCopyHtoH) +
                                   copy_path);
}

std::uint32_t CritPath::add(CritCategory cat, sim::Time start, sim::Time end,
                            std::uint32_t p1, std::uint32_t p2,
                            std::uint32_t p3, CritCategory gap,
                            std::int32_t owner, std::uint64_t bytes,
                            std::string label) {
  CritNode n;
  n.start = start;
  n.end = end;
  n.pred[0] = p1;
  n.pred[1] = p2;
  n.pred[2] = p3;
  n.cat = cat;
  n.gap_cat = gap;
  n.owner = owner;
  n.bytes = bytes;
  n.label = std::move(label);
  spin_.lock();
  nodes_.push_back(std::move(n));
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  spin_.unlock();
  // Predecessors must predate this node (ids are a topological order).
  IMPACC_CHECK(p1 < id && p2 < id && p3 < id);
  return id;
}

std::size_t CritPath::num_nodes() const {
  spin_.lock();
  const std::size_t n = nodes_.size();
  spin_.unlock();
  return n;
}

CritNode CritPath::node(std::uint32_t id) const {
  spin_.lock();
  IMPACC_CHECK(id >= 1 && id <= nodes_.size());
  CritNode n = nodes_[id - 1];
  spin_.unlock();
  return n;
}

std::vector<CritNode> CritPath::snapshot() const {
  spin_.lock();
  std::vector<CritNode> out(nodes_.begin(), nodes_.end());
  spin_.unlock();
  return out;
}

double CritPath::Report::total() const {
  double s = 0;
  for (const double v : seconds) s += v;
  return s;
}

CritPath::Report CritPath::analyze(sim::Time makespan, std::uint32_t end_node,
                                   bool want_path) const {
  // Analysis happens once, after the run, when nothing records anymore —
  // walk the deque in place under the lock instead of copying it (the
  // copy dominates publish time on message-heavy runs).
  spin_.lock();
  const std::deque<CritNode>& nodes = nodes_;
  Report r;
  r.makespan = makespan;
  r.end_node = end_node;
  if (end_node == 0 || end_node > nodes.size()) {
    spin_.unlock();
    return r;
  }

  // Frontier time descends from makespan to 0. Each step either attributes
  // a node's occupied interval [start, t] to its category or a dependency
  // gap [pred.end, t] to the node's gap reason; both lower t, so the sum of
  // all attributions telescopes to exactly the makespan.
  sim::Time t = makespan;
  std::uint32_t cur = end_node;
  while (cur != 0) {
    const CritNode& n = nodes[cur - 1];
    const sim::Time s = std::min(t, n.start);
    const sim::Time attributed = t - s;
    if (attributed != 0) r.seconds[static_cast<int>(n.cat)] += attributed;
    if (want_path) {
      PathSlice slice;
      slice.id = cur;
      slice.cat = n.cat;
      slice.start = n.start;
      slice.end = n.end;
      slice.attributed = attributed;
      slice.owner = n.owner;
      slice.bytes = n.bytes;
      slice.label = n.label;
      r.path.push_back(std::move(slice));
    }
    t = s;

    // Descend into the predecessor that finished last; attribute any gap
    // before this node started to the node's recorded wait reason.
    std::uint32_t next = 0;
    sim::Time next_end = 0;
    for (const std::uint32_t p : n.pred) {
      if (p == 0) continue;
      IMPACC_CHECK(p < cur);
      if (next == 0 || nodes[p - 1].end > next_end) {
        next = p;
        next_end = nodes[p - 1].end;
      }
    }
    if (next == 0) {
      // Chain head. Anything left before it is unexplained start latency.
      if (t > 0) r.seconds[static_cast<int>(n.gap_cat)] += t;
      t = 0;
      break;
    }
    if (next_end < t) {
      r.seconds[static_cast<int>(n.gap_cat)] += t - next_end;
      t = next_end;
    }
    cur = next;
  }
  spin_.unlock();
  return r;
}

sim::Time CritPath::whatif_makespan(int zeroed_cat) const {
  spin_.lock();
  const std::deque<CritNode>& nodes = nodes_;
  std::vector<sim::Time> new_end(nodes.size() + 1, 0);
  sim::Time makespan = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const CritNode& n = nodes[i];
    // The node's scheduling delay past its predecessors is kept fixed (it
    // can be negative for overlapping pipeline records); only durations of
    // the zeroed category collapse.
    sim::Time max_pred_end = 0;
    sim::Time max_pred_new = 0;
    bool has_pred = false;
    for (const std::uint32_t p : n.pred) {
      if (p == 0) continue;
      has_pred = true;
      max_pred_end = std::max(max_pred_end, nodes[p - 1].end);
      max_pred_new = std::max(max_pred_new, new_end[p]);
    }
    const sim::Time delay = has_pred ? n.start - max_pred_end : n.start;
    const sim::Time dur =
        static_cast<int>(n.cat) == zeroed_cat ? 0 : n.end - n.start;
    new_end[i + 1] = max_pred_new + delay + dur;
    makespan = std::max(makespan, new_end[i + 1]);
  }
  spin_.unlock();
  return makespan;
}

std::string CritPath::format_report(const Report& r, int top_n) const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "critical path: makespan %.6f ms, %zu nodes recorded, %zu on "
                "path\n",
                sim::to_ms(r.makespan), num_nodes(), r.path.size());
  os << buf;

  os << "makespan attribution by category:\n";
  for (int c = 0; c < kCritCategoryCount; ++c) {
    if (r.seconds[c] == 0) continue;
    const double frac = r.makespan > 0 ? r.seconds[c] / r.makespan : 0;
    std::snprintf(buf, sizeof buf, "  %-18s %12.6f ms  %6.2f%%\n",
                  kSlugs[c], sim::to_ms(r.seconds[c]), 100.0 * frac);
    os << buf;
  }
  std::snprintf(buf, sizeof buf, "  %-18s %12.6f ms  (sum; == makespan)\n",
                "total", sim::to_ms(r.total()));
  os << buf;

  std::vector<const PathSlice*> top;
  top.reserve(r.path.size());
  for (const PathSlice& s : r.path)
    if (s.attributed > 0) top.push_back(&s);
  std::stable_sort(top.begin(), top.end(),
                   [](const PathSlice* a, const PathSlice* b) {
                     return a->attributed > b->attributed;
                   });
  if (top_n >= 0 && top.size() > static_cast<std::size_t>(top_n))
    top.resize(static_cast<std::size_t>(top_n));
  os << "top critical operations:\n";
  int rank = 1;
  for (const PathSlice* s : top) {
    const double frac = r.makespan > 0 ? s->attributed / r.makespan : 0;
    std::snprintf(buf, sizeof buf,
                  "  %2d. %-16s %10.6f ms  %6.2f%%  owner=%d  %" PRIu64
                  "B  %s\n",
                  rank++, kSlugs[static_cast<int>(s->cat)],
                  sim::to_ms(s->attributed), 100.0 * frac, s->owner, s->bytes,
                  s->label.c_str());
    os << buf;
  }

  // What-if: re-schedule the whole graph with one category's durations
  // zeroed. Categories that only ever appear as gaps (pure waiting) have
  // nothing to zero and are skipped.
  double cat_dur[kCritCategoryCount] = {};
  {
    const std::vector<CritNode> nodes = snapshot();
    for (const CritNode& n : nodes)
      cat_dur[static_cast<int>(n.cat)] += n.end - n.start;
  }
  const sim::Time base = whatif_makespan(-1);
  os << "what-if (category -> 0):\n";
  for (int c = 0; c < kCritCategoryCount; ++c) {
    if (cat_dur[c] <= 0 || r.seconds[c] <= 0) continue;
    const sim::Time zeroed = whatif_makespan(c);
    const double drop = base > 0 ? 100.0 * (base - zeroed) / base : 0;
    std::snprintf(buf, sizeof buf,
                  "  %-18s -> 0  =>  makespan %0.6f ms  (-%.1f%%)\n",
                  kSlugs[c], sim::to_ms(zeroed), drop);
    os << buf;
  }
  return os.str();
}

bool CritPath::save_graph(const std::string& path, sim::Time makespan,
                          std::uint32_t end_node) const {
  std::ofstream f(path);
  if (!f) return false;
  const std::vector<CritNode> nodes = snapshot();
  f << "impacc-critpath-graph v1\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "makespan %.17g\n", makespan);
  f << buf << "end_node " << end_node << "\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const CritNode& n = nodes[i];
    std::snprintf(buf, sizeof buf,
                  "node %zu %d %.17g %.17g %u %u %u %d %d %" PRIu64 " ",
                  i + 1, static_cast<int>(n.cat), n.start, n.end, n.pred[0],
                  n.pred[1], n.pred[2], static_cast<int>(n.gap_cat), n.owner,
                  n.bytes);
    f << buf << n.label << "\n";
  }
  return static_cast<bool>(f);
}

bool CritPath::load_graph(const std::string& path, CritPath* out,
                          sim::Time* makespan, std::uint32_t* end_node) {
  std::ifstream f(path);
  if (!f) return false;
  std::string line;
  if (!std::getline(f, line) || line != "impacc-critpath-graph v1")
    return false;
  *makespan = 0;
  *end_node = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    std::string kw;
    is >> kw;
    if (kw == "makespan") {
      is >> *makespan;
    } else if (kw == "end_node") {
      is >> *end_node;
    } else if (kw == "node") {
      std::size_t id = 0;
      int cat = 0;
      int gap = 0;
      CritNode n;
      is >> id >> cat >> n.start >> n.end >> n.pred[0] >> n.pred[1] >>
          n.pred[2] >> gap >> n.owner >> n.bytes;
      if (!is || cat < 0 || cat >= kCritCategoryCount || gap < 0 ||
          gap >= kCritCategoryCount)
        return false;
      n.cat = static_cast<CritCategory>(cat);
      n.gap_cat = static_cast<CritCategory>(gap);
      std::getline(is, n.label);
      if (!n.label.empty() && n.label.front() == ' ') n.label.erase(0, 1);
      const std::uint32_t got = out->add(n.cat, n.start, n.end, n.pred[0],
                                         n.pred[1], n.pred[2], n.gap_cat,
                                         n.owner, n.bytes, std::move(n.label));
      if (got != id) return false;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace impacc::obs
