// Causal critical-path recorder (DESIGN.md §10).
//
// A run is a DAG: task compute segments (between blocking points), kernel
// and copy ops on device activity queues, internode message phases
// (stage_dtoh -> wire -> stage_htod), and the handler work that matches
// them. Edges come from program order, queue FIFO order, send->recv
// causality, and wait-completion sites. Recording is append-only and
// thread-safe; analysis happens once, at publish time, with a backward
// walk from the last-finishing task that attributes every instant of
// [0, makespan] to exactly one category — reconciliation by construction,
// same discipline as account_copy.
//
// This header is deliberately free of core/dev includes so it can be
// pulled into dev/stream.h and core/runtime.h without cycles.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.h"
#include "ult/sync.h"

namespace impacc::obs {

/// Where a slice of the critical path went. The six copy categories mirror
/// dev::CopyPathKind (same order, same slugs as dev.copy.<path>.*).
enum class CritCategory : int {
  kCompute = 0,     // task fiber between blocking points
  kKernel,          // modeled kernel on a device queue
  kCopyHtoH,
  kCopyHtoD,
  kCopyDtoH,
  kCopyDtoDPeer,
  kCopyDtoDStaged,
  kCopyBaselineIpc,
  kWire,            // fabric occupancy (incl. NIC serialization waits)
  kMatchWait,       // data ready but unmatched / task blocked in wait
  kHandler,         // per-message handler command overhead
  kSchedStall,      // device queue scheduled but not yet advanced
  kCount,
};

constexpr int kCritCategoryCount = static_cast<int>(CritCategory::kCount);

/// Metric-name slug: "compute", "kernel", "copy.htod", ..., "wire",
/// "match_wait", "handler", "sched_stall".
const char* crit_category_slug(CritCategory c);

/// Map a dev::CopyPathKind (as int, to avoid the include) to its category.
CritCategory crit_copy_category(int copy_path);

/// One DAG node. Node ids are 1-based (0 = no predecessor); they are
/// assigned in creation order, so every predecessor id is smaller than the
/// node's own id and id order is a topological order for free.
struct CritNode {
  sim::Time start = 0;
  sim::Time end = 0;
  std::uint32_t pred[3] = {0, 0, 0};
  CritCategory cat = CritCategory::kCompute;
  /// What the owner was waiting on during the gap *before* this node
  /// started (frontier time > max predecessor end in the backward walk).
  CritCategory gap_cat = CritCategory::kSchedStall;
  std::int32_t owner = -1;  // task id, or -1 for node-level work
  std::uint64_t bytes = 0;
  std::string label;
};

class CritPath {
 public:
  /// Append a node; thread-safe. Returns the new node's id (>= 1).
  /// Predecessor ids must already exist (i.e. be smaller).
  std::uint32_t add(CritCategory cat, sim::Time start, sim::Time end,
                    std::uint32_t p1 = 0, std::uint32_t p2 = 0,
                    std::uint32_t p3 = 0,
                    CritCategory gap = CritCategory::kSchedStall,
                    std::int32_t owner = -1, std::uint64_t bytes = 0,
                    std::string label = {});

  std::size_t num_nodes() const;
  CritNode node(std::uint32_t id) const;

  /// One on-path node with the seconds the walk attributed to it.
  struct PathSlice {
    std::uint32_t id = 0;
    CritCategory cat = CritCategory::kCompute;
    sim::Time start = 0;
    sim::Time end = 0;
    sim::Time attributed = 0;
    std::int32_t owner = -1;
    std::uint64_t bytes = 0;
    std::string label;
  };

  struct Report {
    sim::Time makespan = 0;
    std::uint32_t end_node = 0;
    double seconds[kCritCategoryCount] = {};
    std::vector<PathSlice> path;  // walk order: makespan -> time 0
    double total() const;
  };

  /// Backward walk from `end_node` (the final segment of the last-finishing
  /// task, whose end == makespan). Every attribution lowers the frontier
  /// time, from makespan down to 0, so Σ seconds == makespan by
  /// construction (up to float summation of exact differences).
  /// `want_path` = false skips collecting the per-slice path (the category
  /// totals are all the gauges need; the slice list only feeds the trace
  /// overlay and the report's top-N table).
  Report analyze(sim::Time makespan, std::uint32_t end_node,
                 bool want_path = true) const;

  /// Forward re-schedule keeping each node's start-delay past its
  /// predecessors fixed but zeroing the durations of one category
  /// (`zeroed_cat` as int; -1 zeroes nothing and reproduces the recorded
  /// end times). Returns the resulting makespan estimate.
  sim::Time whatif_makespan(int zeroed_cat) const;

  /// Human-readable report: per-category attribution, top-N critical
  /// operations, and what-if estimates for every category that has
  /// on-graph duration.
  std::string format_report(const Report& r, int top_n = 10) const;

  /// Text serialization (impacc-critpath-graph v1) so tools/impacc-prof
  /// can re-analyze a run offline.
  bool save_graph(const std::string& path, sim::Time makespan,
                  std::uint32_t end_node) const;
  static bool load_graph(const std::string& path, CritPath* out,
                         sim::Time* makespan, std::uint32_t* end_node);

 private:
  std::vector<CritNode> snapshot() const;

  mutable ult::SpinLock spin_;
  std::deque<CritNode> nodes_;
};

}  // namespace impacc::obs
