#include "dev/memarena.h"

#include <sys/mman.h>

#include <atomic>

#include "common/math_utils.h"

namespace impacc::dev {

namespace {

// Synthetic range start: well below typical glibc heap (0x55xx...) and
// mmap (0x7fxx...) areas on x86-64 Linux, well above null-page traps.
std::atomic<std::uintptr_t> g_virtual_next{0x2000'0000'0000ull};

}  // namespace

std::uintptr_t reserve_virtual_range(std::uint64_t bytes) {
  const std::uint64_t padded = round_up(bytes + 4096, 4096);
  return g_virtual_next.fetch_add(padded, std::memory_order_relaxed);
}

MemArena::MemArena(std::uint64_t capacity, ArenaMode mode)
    : capacity_(round_up(capacity, 4096)), mode_(mode) {
  if (mode_ == ArenaMode::kReal) {
    mapping_ = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    IMPACC_CHECK_MSG(mapping_ != MAP_FAILED, "device arena mmap failed");
    base_ = reinterpret_cast<std::uintptr_t>(mapping_);
  } else {
    base_ = reserve_virtual_range(capacity_);
  }
  free_blocks_.emplace(0, capacity_);
}

MemArena::~MemArena() {
  if (mapping_ != nullptr) ::munmap(mapping_, capacity_);
}

void* MemArena::alloc(std::uint64_t size, std::uint64_t align) {
  IMPACC_CHECK(size > 0 && is_pow2(align));
  lock_.lock();
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const std::uint64_t block_off = it->first;
    const std::uint64_t block_size = it->second;
    const std::uint64_t aligned_off = round_up(block_off, align);
    const std::uint64_t pad = aligned_off - block_off;
    if (block_size < pad + size) continue;

    free_blocks_.erase(it);
    if (pad > 0) free_blocks_.emplace(block_off, pad);
    const std::uint64_t tail = block_size - pad - size;
    if (tail > 0) free_blocks_.emplace(aligned_off + size, tail);
    live_.emplace(aligned_off, size);
    in_use_ += size;
    lock_.unlock();
    return reinterpret_cast<void*>(base_ + aligned_off);
  }
  lock_.unlock();
  return nullptr;
}

void MemArena::free(void* p) {
  if (p == nullptr) return;
  const std::uint64_t off = reinterpret_cast<std::uintptr_t>(p) - base_;
  lock_.lock();
  auto it = live_.find(off);
  IMPACC_CHECK_MSG(it != live_.end(), "free of unknown device pointer");
  std::uint64_t size = it->second;
  live_.erase(it);
  in_use_ -= size;

  // Insert into the free map and coalesce with neighbors.
  auto [fit, inserted] = free_blocks_.emplace(off, size);
  IMPACC_CHECK(inserted);
  if (fit != free_blocks_.begin()) {
    auto prev = std::prev(fit);
    if (prev->first + prev->second == fit->first) {
      prev->second += fit->second;
      free_blocks_.erase(fit);
      fit = prev;
    }
  }
  auto next = std::next(fit);
  if (next != free_blocks_.end() && fit->first + fit->second == next->first) {
    fit->second += next->second;
    free_blocks_.erase(next);
  }
  lock_.unlock();
}

std::uint64_t MemArena::alloc_size(void* p) const {
  const std::uint64_t off = reinterpret_cast<std::uintptr_t>(p) - base_;
  lock_.lock();
  auto it = live_.find(off);
  const std::uint64_t size = (it != live_.end()) ? it->second : 0;
  lock_.unlock();
  return size;
}

std::uint64_t MemArena::bytes_in_use() const {
  lock_.lock();
  const std::uint64_t v = in_use_;
  lock_.unlock();
  return v;
}

}  // namespace impacc::dev
