// Activity queues (streams) and completion records.
//
// OpenACC async clauses name *activity queues* on a device; IMPACC extends
// them with MPI operations (the unified activity queue, section 3.6).
// A Stream executes its operations strictly in order; different streams
// proceed independently. Streams are driven by the per-node message
// handler fiber; task fibers only enqueue and wait.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/critpath.h"
#include "sim/trace.h"
#include "sim/vclock.h"
#include "ult/sync.h"

namespace impacc::dev {

/// One-shot completion flag carrying the virtual time at which the
/// operation finished. Task fibers block on it; the handler signals it.
class CompletionRecord {
 public:
  /// Signal completion at virtual time `t`. Wakes all waiters. `cp` is the
  /// producer's critical-path node id (0 when the profiler is off or the
  /// producer recorded nothing); waiters join their dependency chain to it.
  void complete(sim::Time t, std::uint32_t cp = 0);

  /// Block the calling fiber until complete; returns the completion time.
  sim::Time wait();

  /// Non-blocking check; fills `t` when done.
  bool poll(sim::Time* t = nullptr);

  /// Critical-path node of the producer that completed this record.
  std::uint32_t cp() const;

 private:
  ult::SpinLock spin_;
  bool done_ = false;
  sim::Time time_ = 0;
  std::uint32_t cp_ = 0;
  std::vector<ult::Fiber*> waiters_;
};

/// A single in-order operation on a stream.
struct StreamOp {
  enum class Kind {
    kKernel,    // compute region (parallel/kernels construct)
    kMemcpy,    // data clause / update traffic
    kCallback,  // host callback (cuStreamAddCallback analog)
    kAsyncExternal,  // MPI operation: posted at head, completed externally
    kMarker,    // wait marker: completes instantly, signals completion
  };

  Kind kind = Kind::kMarker;
  std::string label;

  // Functional work. For kKernel this runs the kernel body; for kMemcpy it
  // is empty and dst/src/bytes below are used; for kCallback it is the
  // callback.
  std::function<void()> body;

  // Modeled duration of the op (kernel roofline / copy path cost).
  sim::Time model_cost = 0;

  // kMemcpy payload; executed only when `functional` is set.
  void* dst = nullptr;
  const void* src = nullptr;
  std::uint64_t bytes = 0;
  bool functional = false;

  // kAsyncExternal (MPI operations): invoked when the op reaches the
  // stream head, with the virtual time at which the stream's preceding
  // work finished. Initiation is instant and the stream keeps advancing —
  // consecutive MPI ops are all initiated in order (otherwise the paper's
  // Fig. 4(c) pattern, isend;irecv on one queue in both tasks, would
  // deadlock under rendezvous). Non-MPI ops wait for every outstanding
  // initiation to complete (in-order completion, section 3.6). The
  // external agent calls Stream::complete_inflight() when done.
  // `cp_pred` is the stream's own chain at initiation time (its most
  // recent critical-path node), so the external op can depend on the
  // queue's preceding work.
  std::function<void(sim::Time ready, std::uint32_t cp_pred)> begin_async;

  // Optional completion to signal with the op's end time.
  CompletionRecord* completion = nullptr;

  // Virtual time of the enqueuing task when it enqueued this op; the op
  // cannot start earlier.
  sim::Time enqueue_time = 0;

  // Critical-path node of the enqueuing task's compute segment (0 when the
  // profiler is off).
  std::uint32_t cp_pred = 0;

  // kMemcpy: dev::CopyPathKind as int (categorizes the copy on the
  // critical path); -1 = unclassified.
  int copy_path = -1;

  // kAsyncExternal ownership bridge: heap state (the MsgCommand) whose
  // ownership transfers to the runtime when begin_async runs. If the op
  // is destroyed *before* initiation — a fault-injected abort tears the
  // stream down mid-queue — drop_pending reclaims it so sanitizer runs
  // stay leak-free. advance() clears the pointer before initiating.
  void* pending_payload = nullptr;
  void (*drop_pending)(void*) = nullptr;
};

/// In-order activity queue. All mutation happens on the owning node's
/// handler fiber except enqueue(), which any task fiber may call; a
/// spinlock protects the deque.
class Stream {
 public:
  Stream(int device_index, int id) : device_index_(device_index), id_(id) {}
  ~Stream();

  int id() const { return id_; }
  int device_index() const { return device_index_; }

  /// Attach a trace sink; executed ops are recorded as
  /// "dev<device> q<id>" rows under process `pid` (the node index).
  void set_trace(sim::TraceSink* sink, int pid) {
    trace_ = sink;
    trace_pid_ = pid;
  }

  /// Attach the critical-path recorder; executed kernel/copy ops become
  /// graph nodes chained in queue order. nullptr (the default) keeps every
  /// hook a single pointer test.
  void set_critpath(obs::CritPath* cp) { critpath_ = cp; }

  /// Most recent critical-path node on this stream's chain (0 if none).
  std::uint32_t cp_last();

  /// Append an op. Returns true if the stream was previously idle (the
  /// caller should then schedule it with the handler).
  bool enqueue(StreamOp op);

  /// Handler-side: run ops from the head. MPI ops initiate and keep the
  /// queue moving; a non-MPI op behind outstanding MPI completions stalls
  /// the stream. `functional` enables real data movement/compute.
  /// Returns true if the stream stalled (waiting on completions).
  bool advance(bool functional);

  /// Complete one outstanding MPI initiation at time `t` (any fiber).
  /// `cp` is the completing operation's critical-path node (0 when the
  /// profiler is off); it becomes the stream chain's latest node so later
  /// ops depend on it. Returns true when the stream has runnable work
  /// again and should be rescheduled with its node handler.
  bool complete_inflight(sim::Time t, std::uint32_t cp = 0);

  /// Virtual time at which all currently-finished work on this stream was
  /// done.
  sim::Time now() const { return clock_.now(); }

  bool idle();

  /// One-line state dump for the hang watchdog ("queued=2 in_flight=1
  /// stalled=1 now=1.234ms"). Safe from any thread.
  std::string debug_state();

 private:
  /// Emit the "dev<i> q<id> depth" counter sample (trace_ must be set).
  void record_depth(sim::Time t, std::size_t depth);

  int device_index_;
  int id_;
  ult::SpinLock spin_;
  std::deque<StreamOp> ops_;
  int in_flight_ = 0;       // initiated MPI ops not yet completed
  bool stalled_ = false;    // non-MPI head waiting for in-flight drain
  bool scheduled_ = false;  // known to the handler's active set
  sim::VirtualClock clock_;
  sim::TraceSink* trace_ = nullptr;
  int trace_pid_ = 0;
  obs::CritPath* critpath_ = nullptr;
  std::uint32_t cp_last_ = 0;  // guarded by spin_
};

}  // namespace impacc::dev
