#include "dev/copyengine.h"

#include <cstring>

#include "sim/costmodel.h"

namespace impacc::dev {

const char* copy_path_name(CopyPathKind k) {
  switch (k) {
    case CopyPathKind::kHostToHost: return "HtoH";
    case CopyPathKind::kHostToDev: return "HtoD";
    case CopyPathKind::kDevToHost: return "DtoH";
    case CopyPathKind::kDevToDevPeer: return "DtoD-peer";
    case CopyPathKind::kDevToDevStaged: return "DtoD-staged";
    case CopyPathKind::kBaselineIpc: return "IPC-staged";
  }
  return "?";
}

const char* copy_path_slug(CopyPathKind k) {
  switch (k) {
    case CopyPathKind::kHostToHost: return "htoh";
    case CopyPathKind::kHostToDev: return "htod";
    case CopyPathKind::kDevToHost: return "dtoh";
    case CopyPathKind::kDevToDevPeer: return "dtod_peer";
    case CopyPathKind::kDevToDevStaged: return "dtod_staged";
    case CopyPathKind::kBaselineIpc: return "ipc_staged";
  }
  return "unknown";
}

IntraCopyPlan plan_fused_copy(const sim::NodeDesc& node,
                              const sim::RuntimeCosts& costs,
                              const Device* src_dev, const Device* dst_dev,
                              std::uint64_t bytes, bool src_near,
                              bool dst_near, bool allow_peer) {
  IntraCopyPlan plan;
  // Two message commands were created and matched by the handler.
  const sim::Time overhead = 2 * costs.handler_command_overhead;

  const bool src_on_dev =
      src_dev != nullptr && src_dev->backend() != sim::BackendKind::kHostShared;
  const bool dst_on_dev =
      dst_dev != nullptr && dst_dev->backend() != sim::BackendKind::kHostShared;

  if (!src_on_dev && !dst_on_dev) {
    plan.kind = CopyPathKind::kHostToHost;
    plan.cost = overhead + sim::host_copy_time(node, bytes);
  } else if (!src_on_dev) {
    plan.kind = CopyPathKind::kHostToDev;
    plan.cost =
        overhead + sim::pcie_copy_time(node, dst_dev->desc(), bytes, dst_near);
  } else if (!dst_on_dev) {
    plan.kind = CopyPathKind::kDevToHost;
    plan.cost =
        overhead + sim::pcie_copy_time(node, src_dev->desc(), bytes, src_near);
  } else if (allow_peer &&
             sim::peer_copy_possible(src_dev->desc(), dst_dev->desc())) {
    plan.kind = CopyPathKind::kDevToDevPeer;
    plan.cost =
        overhead + sim::peer_copy_time(src_dev->desc(), dst_dev->desc(), bytes);
  } else {
    // Fused staging: DtoH + HtoD, but no HtoH hop — both tasks share the
    // unified node VAS, so one pinned bounce buffer serves both copies.
    plan.kind = CopyPathKind::kDevToDevStaged;
    plan.cost = overhead + sim::staged_dtod_time(node, src_dev->desc(),
                                                 dst_dev->desc(), bytes,
                                                 /*include_host_copy=*/false,
                                                 src_near && dst_near);
  }
  return plan;
}

IntraCopyPlan plan_baseline_copy(const sim::NodeDesc& node,
                                 const sim::RuntimeCosts& costs,
                                 std::uint64_t bytes) {
  IntraCopyPlan plan;
  plan.kind = CopyPathKind::kBaselineIpc;
  // Process model: the sender copies into a shared-memory segment and the
  // receiver copies out, plus per-message IPC rendezvous (Fig. 6 left).
  // The two pipelined copies contend for the same memory controller, so
  // each runs well below the single-copy memcpy rate.
  constexpr double kShmContentionFactor = 0.55;
  sim::LinkModel staged;
  staged.latency = node.host_copy.latency;
  staged.bandwidth = node.host_copy.bandwidth * kShmContentionFactor;
  plan.cost = costs.ipc_message_overhead + 2 * staged.time(bytes);
  return plan;
}

IntraCopyPlan plan_unfused_copy(const sim::NodeDesc& node,
                                const sim::RuntimeCosts& costs,
                                const Device* src_dev, const Device* dst_dev,
                                std::uint64_t bytes, bool src_near,
                                bool dst_near) {
  IntraCopyPlan plan = plan_baseline_copy(node, costs, bytes);
  if (src_dev != nullptr &&
      src_dev->backend() != sim::BackendKind::kHostShared) {
    plan.cost += sim::pcie_copy_time(node, src_dev->desc(), bytes, src_near);
  }
  if (dst_dev != nullptr &&
      dst_dev->backend() != sim::BackendKind::kHostShared) {
    plan.cost += sim::pcie_copy_time(node, dst_dev->desc(), bytes, dst_near);
  }
  return plan;
}

void copy_bytes(void* dst, const void* src, std::uint64_t bytes,
                bool functional) {
  if (functional && bytes > 0 && dst != src) std::memmove(dst, src, bytes);
}

ChunkPipeline plan_chunk_pipeline(bool enabled, std::uint64_t msg_bytes,
                                  std::uint64_t chunk_bytes) {
  ChunkPipeline plan;
  if (!enabled || chunk_bytes == 0 || msg_bytes <= chunk_bytes) return plan;
  plan.chunk_bytes = chunk_bytes;
  plan.chunks = static_cast<int>((msg_bytes + chunk_bytes - 1) / chunk_bytes);
  return plan;
}

}  // namespace impacc::dev
