// Simulated accelerator device.
//
// A Device bundles the pieces the IMPACC runtime needs from CUDA/OpenCL:
// device memory (an arena inside the unified node VAS), buffer handles
// (cl_mem-style for OpenCL-like backends, raw UVA pointers for CUDA-like
// ones — Fig. 3), and activity queues. Kernel *execution* is functional:
// bodies run on the host; duration comes from the roofline cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dev/memarena.h"
#include "dev/stream.h"
#include "sim/costmodel.h"
#include "sim/topology.h"

namespace impacc::dev {

/// Result of a device memory allocation. For CUDA-like backends `dptr` is
/// the UVA address and `handle` is 0. For OpenCL-like backends `handle`
/// identifies the cl_mem-style object and `dptr` is the reserved mapped
/// range the present table indexes (section 3.4).
struct DeviceBuffer {
  void* dptr = nullptr;
  std::uint64_t handle = 0;
  std::uint64_t bytes = 0;
};

class Device {
 public:
  /// `global_index` is unique across the cluster; `local_index` within the
  /// node. `functional` selects a dereferenceable arena.
  Device(sim::DeviceDesc desc, int node, int local_index, int global_index,
         bool functional);

  const sim::DeviceDesc& desc() const { return desc_; }
  int node() const { return node_; }
  int local_index() const { return local_index_; }
  int global_index() const { return global_index_; }
  sim::DeviceKind kind() const { return desc_.kind; }
  sim::BackendKind backend() const { return desc_.backend; }

  /// Allocate device memory. Aborts on exhaustion (device memory sizing is
  /// an application contract in the paper's model).
  DeviceBuffer alloc(std::uint64_t bytes);
  void free(const DeviceBuffer& buf);

  /// True if `p` lies in this device's memory range.
  bool owns(const void* p) const { return arena_.contains(p); }

  MemArena& arena() { return arena_; }
  const MemArena& arena() const { return arena_; }

  /// Activity queue for OpenACC async id `async_id` (created lazily).
  Stream* stream(int async_id);

  /// All streams created so far (handler iterates for drain/quiesce).
  std::vector<Stream*> streams();

  /// Kernel roofline time for a work estimate on this device.
  sim::Time kernel_cost(const sim::WorkEstimate& w) const {
    return sim::kernel_time(desc_, w.flops, w.bytes);
  }

 private:
  sim::DeviceDesc desc_;
  int node_;
  int local_index_;
  int global_index_;
  MemArena arena_;
  std::uint64_t next_handle_ = 1;

  ult::SpinLock streams_lock_;
  std::unordered_map<int, std::unique_ptr<Stream>> streams_;
};

}  // namespace impacc::dev
