// Device memory arenas and the allocator behind acc data clauses.
//
// Each simulated accelerator owns one arena representing its device
// memory. In *real* mode the arena is an mmap'd MAP_NORESERVE region, so
// device pointers are genuine addresses inside the unified node virtual
// address space (the paper's UVA technique, section 3.4) and kernels can
// dereference them. In *virtual* mode (used by model-only benchmark points
// whose device memories would exceed this machine) the arena hands out
// unique, never-dereferenced addresses from a reserved range.
#pragma once

#include <cstdint>
#include <map>

#include "common/types.h"
#include "ult/sync.h"

namespace impacc::dev {

enum class ArenaMode : int {
  kReal,     // mmap-backed; pointers are dereferenceable
  kVirtual,  // synthetic address range; pointers are opaque tokens
};

/// First-fit free-list allocator with coalescing over one contiguous
/// region. Thread-safe (short spinlock; no fiber switches inside).
class MemArena {
 public:
  MemArena(std::uint64_t capacity, ArenaMode mode);
  ~MemArena();

  MemArena(const MemArena&) = delete;
  MemArena& operator=(const MemArena&) = delete;

  /// Allocate `size` bytes aligned to `align` (power of two). Returns
  /// nullptr when the arena is exhausted.
  void* alloc(std::uint64_t size, std::uint64_t align = 256);

  /// Free a pointer previously returned by alloc().
  void free(void* p);

  /// Size of the allocation at `p` (0 if unknown).
  std::uint64_t alloc_size(void* p) const;

  bool contains(const void* p) const {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    return a >= base_ && a < base_ + capacity_;
  }

  std::uintptr_t base() const { return base_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t bytes_in_use() const;
  ArenaMode mode() const { return mode_; }
  bool dereferenceable() const { return mode_ == ArenaMode::kReal; }

 private:
  std::uint64_t capacity_;
  ArenaMode mode_;
  std::uintptr_t base_ = 0;
  void* mapping_ = nullptr;

  mutable ult::SpinLock lock_;
  // offset -> size; disjoint, coalesced.
  std::map<std::uint64_t, std::uint64_t> free_blocks_;
  // offset -> size of live allocations (for free()/alloc_size()).
  std::map<std::uint64_t, std::uint64_t> live_;
  std::uint64_t in_use_ = 0;
};

/// Global allocator of synthetic address ranges for kVirtual arenas and the
/// model-only node heap. Ranges never overlap each other; they live far
/// from the glibc heap/stack/library areas so range lookups in the unified
/// VAS cannot confuse them with real host memory.
std::uintptr_t reserve_virtual_range(std::uint64_t bytes);

}  // namespace impacc::dev
