#include "dev/device.h"

#include "common/types.h"

namespace impacc::dev {

namespace {

// Virtual arenas are sized to the device's real capacity; functional
// arenas are capped so small-scale tests don't reserve tens of GB each.
std::uint64_t functional_arena_cap(std::uint64_t device_bytes) {
  constexpr std::uint64_t kCap = 2ull << 30;  // 2 GiB is ample for tests
  return device_bytes < kCap ? device_bytes : kCap;
}

}  // namespace

namespace {
// Integrated (host-shared) accelerators have no device memory of their
// own (mem_bytes == 0); their arena is never used but must exist.
std::uint64_t arena_capacity(const sim::DeviceDesc& d, bool functional) {
  const std::uint64_t min_cap = 1 << 20;
  const std::uint64_t cap =
      functional ? functional_arena_cap(d.mem_bytes) : d.mem_bytes;
  return cap < min_cap ? min_cap : cap;
}
}  // namespace

Device::Device(sim::DeviceDesc desc, int node, int local_index,
               int global_index, bool functional)
    : desc_(std::move(desc)),
      node_(node),
      local_index_(local_index),
      global_index_(global_index),
      arena_(arena_capacity(desc_, functional),
             functional ? ArenaMode::kReal : ArenaMode::kVirtual) {}

DeviceBuffer Device::alloc(std::uint64_t bytes) {
  void* p = arena_.alloc(bytes);
  IMPACC_CHECK_MSG(p != nullptr, "device memory exhausted");
  DeviceBuffer buf;
  buf.dptr = p;
  buf.bytes = bytes;
  if (desc_.backend == sim::BackendKind::kOpenClLike) {
    // The cl_mem-style handle; the mapped range (dptr) is what the present
    // table indexes, the handle+offset is what the backend would be called
    // with (Fig. 3, Task 1).
    buf.handle = next_handle_++;
  }
  return buf;
}

void Device::free(const DeviceBuffer& buf) {
  if (buf.dptr != nullptr) arena_.free(buf.dptr);
}

Stream* Device::stream(int async_id) {
  streams_lock_.lock();
  auto it = streams_.find(async_id);
  if (it == streams_.end()) {
    auto owned = std::make_unique<Stream>(global_index_, async_id);
    it = streams_.emplace(async_id, std::move(owned)).first;
  }
  Stream* s = it->second.get();
  streams_lock_.unlock();
  return s;
}

std::vector<Stream*> Device::streams() {
  std::vector<Stream*> out;
  streams_lock_.lock();
  out.reserve(streams_.size());
  for (auto& [id, s] : streams_) out.push_back(s.get());
  streams_lock_.unlock();
  return out;
}

}  // namespace impacc::dev
