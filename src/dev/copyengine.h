// Intra-node copy planning (Fig. 6 of the paper).
//
// Given the locations of a matched send/recv pair's buffers, pick the
// memory-copy path and its modeled cost. IMPACC's message fusion turns the
// pair into ONE copy (possibly a direct device-to-device PCIe transfer);
// the baseline process model stages everything through host shared memory
// with IPC overhead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "dev/device.h"
#include "sim/topology.h"

namespace impacc::dev {

enum class CopyPathKind : int {
  kHostToHost = 0,
  kHostToDev,
  kDevToHost,
  kDevToDevPeer,    // direct PCIe peer copy (GPUDirect/DirectGMA)
  kDevToDevStaged,  // DtoH + HtoD through host memory (fused, no HtoH)
  kBaselineIpc,     // process model: copy to shm + copy out + IPC overhead
};

const char* copy_path_name(CopyPathKind k);

/// Metric-name slug for a copy path ("dev.copy.<slug>.*" in the metrics
/// registry): lowercase, [a-z0-9_] only.
const char* copy_path_slug(CopyPathKind k);

struct IntraCopyPlan {
  CopyPathKind kind = CopyPathKind::kHostToHost;
  sim::Time cost = 0;
};

/// Plan a fused (IMPACC) intra-node copy. `src_dev`/`dst_dev` are nullptr
/// for host buffers. `near` flags say whether the owning task is pinned on
/// the device's socket. `allow_peer` gates the GPUDirect path (ablation).
IntraCopyPlan plan_fused_copy(const sim::NodeDesc& node,
                              const sim::RuntimeCosts& costs,
                              const Device* src_dev, const Device* dst_dev,
                              std::uint64_t bytes, bool src_near,
                              bool dst_near, bool allow_peer);

/// Plan a baseline (MPI+OpenACC process model) intra-node host-to-host
/// message: stage into shared memory, IPC, stage out.
IntraCopyPlan plan_baseline_copy(const sim::NodeDesc& node,
                                 const sim::RuntimeCosts& costs,
                                 std::uint64_t bytes);

/// Plan an *unfused* copy for device-resident buffers (the message-fusion
/// ablation): each side stages its device data over PCIe around the
/// baseline IPC host path.
IntraCopyPlan plan_unfused_copy(const sim::NodeDesc& node,
                                const sim::RuntimeCosts& costs,
                                const Device* src_dev, const Device* dst_dev,
                                std::uint64_t bytes, bool src_near,
                                bool dst_near);

/// Perform the actual bytes movement when running functionally.
void copy_bytes(void* dst, const void* src, std::uint64_t bytes,
                bool functional);

// --- Internode chunk pipeline (section 3.5) ---------------------------------

/// Split decision for one internode transfer: ceil(B/C) chunks of at most
/// `chunk_bytes` each. A transfer is only worth splitting when it is more
/// than one chunk long; chunk_bytes == 0 means "send monolithic".
struct ChunkPipeline {
  std::uint64_t chunk_bytes = 0;
  int chunks = 1;

  bool chunked() const { return chunk_bytes != 0; }

  /// Size of chunk `j` (the last chunk carries the tail).
  std::uint64_t chunk_len(int j, std::uint64_t total_bytes) const {
    const std::uint64_t off = static_cast<std::uint64_t>(j) * chunk_bytes;
    return std::min(chunk_bytes, total_bytes - off);
  }
};

/// Plan the split for a message of `msg_bytes` with the runtime's chunk
/// size `chunk_bytes`; `enabled` reflects the features().chunk_pipeline
/// ablation gate (and any path constraints of the caller).
ChunkPipeline plan_chunk_pipeline(bool enabled, std::uint64_t msg_bytes,
                                  std::uint64_t chunk_bytes);

}  // namespace impacc::dev
