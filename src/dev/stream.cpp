#include "dev/stream.h"

#include <cstdio>
#include <cstring>

#include "common/types.h"
#include "ult/scheduler.h"

namespace impacc::dev {

// --- CompletionRecord -------------------------------------------------------

void CompletionRecord::complete(sim::Time t, std::uint32_t cp) {
  spin_.lock();
  IMPACC_CHECK_MSG(!done_, "double completion");
  done_ = true;
  time_ = t;
  cp_ = cp;
  std::vector<ult::Fiber*> waiters;
  waiters.swap(waiters_);
  spin_.unlock();
  for (ult::Fiber* f : waiters) f->scheduler()->unblock(f);
}

sim::Time CompletionRecord::wait() {
  ult::Fiber* self = ult::Scheduler::current();
  IMPACC_CHECK_MSG(self != nullptr, "CompletionRecord::wait outside fiber");
  spin_.lock();
  if (done_) {
    const sim::Time t = time_;
    spin_.unlock();
    return t;
  }
  waiters_.push_back(self);
  self->scheduler()->block([this] { spin_.unlock(); });
  // done_ is monotonic; no lock needed for the re-read.
  return time_;
}

bool CompletionRecord::poll(sim::Time* t) {
  spin_.lock();
  const bool done = done_;
  if (done && t != nullptr) *t = time_;
  spin_.unlock();
  return done;
}

std::uint32_t CompletionRecord::cp() const {
  auto* self = const_cast<CompletionRecord*>(this);
  self->spin_.lock();
  const std::uint32_t cp = cp_;
  self->spin_.unlock();
  return cp;
}

// --- Stream ------------------------------------------------------------------

Stream::~Stream() {
  // An aborted (fault-injected) run can tear streams down with queued
  // ops whose begin_async never ran; reclaim the heap state they carry.
  for (auto& op : ops_) {
    if (op.pending_payload != nullptr && op.drop_pending != nullptr) {
      op.drop_pending(op.pending_payload);
    }
  }
}

void Stream::record_depth(sim::Time t, std::size_t depth) {
  trace_->record_counter(trace_pid_,
                         "dev" + std::to_string(device_index_) + " q" +
                             std::to_string(id_) + " depth",
                         "ops", t, static_cast<double>(depth));
}

bool Stream::enqueue(StreamOp op) {
  const sim::Time at = op.enqueue_time;
  spin_.lock();
  ops_.push_back(std::move(op));
  const std::size_t depth = ops_.size() + static_cast<std::size_t>(in_flight_);
  const bool was_unscheduled = !scheduled_;
  scheduled_ = true;
  spin_.unlock();
  if (trace_ != nullptr) record_depth(at, depth);
  return was_unscheduled;
}

bool Stream::advance(bool functional) {
  for (;;) {
    spin_.lock();
    if (ops_.empty()) {
      scheduled_ = false;
      spin_.unlock();
      return false;
    }
    StreamOp& head = ops_.front();
    // Start no earlier than both the stream timeline and the host-side
    // enqueue point.
    clock_.merge(head.enqueue_time);

    if (head.kind == StreamOp::Kind::kAsyncExternal) {
      // Initiate and keep going; completion arrives out-of-band.
      auto begin = std::move(head.begin_async);
      head.pending_payload = nullptr;  // ownership transfers to begin()
      const sim::Time ready = clock_.now();
      const std::uint32_t cp = cp_last_;
      ops_.pop_front();
      ++in_flight_;
      spin_.unlock();
      begin(ready, cp);
      continue;
    }

    if (in_flight_ > 0) {
      // In-order completion: this op cannot run until every initiated MPI
      // op has completed.
      stalled_ = true;
      scheduled_ = false;
      spin_.unlock();
      return true;
    }

    // Take a copy of the execution payload so the functional work runs
    // without holding the spinlock.
    StreamOp op = std::move(head);
    ops_.pop_front();
    const sim::Time start = clock_.now();
    spin_.unlock();

    if (functional) {
      if (op.kind == StreamOp::Kind::kMemcpy && op.functional &&
          op.bytes > 0) {
        std::memmove(op.dst, op.src, op.bytes);
      }
      if (op.body) op.body();
    } else if (op.kind == StreamOp::Kind::kCallback && op.body) {
      // Callbacks carry control flow (e.g. chained sends), not data; they
      // run even in model-only mode.
      op.body();
    }

    const sim::Time end = clock_.advance(op.model_cost);
    if (trace_ != nullptr) {
      if (op.kind != StreamOp::Kind::kMarker) {
        trace_->record(trace_pid_,
                       "dev" + std::to_string(device_index_) + " q" +
                           std::to_string(id_),
                       op.label,
                       op.kind == StreamOp::Kind::kKernel ? "kernel" : "copy",
                       start, end);
      }
      spin_.lock();
      const std::size_t depth =
          ops_.size() + static_cast<std::size_t>(in_flight_);
      spin_.unlock();
      record_depth(end, depth);
    }
    std::uint32_t cp_done = 0;
    if (critpath_ != nullptr) {
      spin_.lock();
      const std::uint32_t chain = cp_last_;
      spin_.unlock();
      if (op.kind == StreamOp::Kind::kKernel ||
          op.kind == StreamOp::Kind::kMemcpy) {
        // Preds: queue FIFO order and the enqueuing task's segment. A gap
        // before the op means the queue sat scheduled but not advanced.
        const obs::CritCategory cat =
            op.kind == StreamOp::Kind::kKernel
                ? obs::CritCategory::kKernel
                : obs::crit_copy_category(op.copy_path >= 0 ? op.copy_path
                                                            : 0);
        cp_done = critpath_->add(cat, start, end, chain, op.cp_pred, 0,
                                 obs::CritCategory::kSchedStall, -1, op.bytes,
                                 op.label);
        spin_.lock();
        cp_last_ = cp_done;
        spin_.unlock();
      } else {
        // Markers/callbacks add no time of their own; pass the chain (or
        // the enqueuer's segment) through their completion.
        cp_done = chain != 0 ? chain : op.cp_pred;
      }
    }
    if (op.completion != nullptr) op.completion->complete(end, cp_done);
  }
}

bool Stream::complete_inflight(sim::Time t, std::uint32_t cp) {
  spin_.lock();
  IMPACC_CHECK_MSG(in_flight_ > 0, "completion without initiation");
  clock_.merge(t);
  if (cp != 0) cp_last_ = cp;
  --in_flight_;
  const std::size_t depth = ops_.size() + static_cast<std::size_t>(in_flight_);
  bool reschedule = false;
  if (in_flight_ == 0 && stalled_) {
    stalled_ = false;
    reschedule = !ops_.empty();
    if (reschedule) scheduled_ = true;
  }
  spin_.unlock();
  if (trace_ != nullptr) record_depth(t, depth);
  return reschedule;
}

bool Stream::idle() {
  spin_.lock();
  const bool idle = ops_.empty() && in_flight_ == 0;
  spin_.unlock();
  return idle;
}

std::uint32_t Stream::cp_last() {
  spin_.lock();
  const std::uint32_t cp = cp_last_;
  spin_.unlock();
  return cp;
}

std::string Stream::debug_state() {
  spin_.lock();
  const std::size_t queued = ops_.size();
  const int in_flight = in_flight_;
  const bool stalled = stalled_;
  const sim::Time now = clock_.now();
  spin_.unlock();
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "dev%d q%d: queued=%zu in_flight=%d stalled=%d now=%.6fms",
                device_index_, id_, queued, in_flight, stalled ? 1 : 0,
                sim::to_ms(now));
  return buf;
}

}  // namespace impacc::dev
