#include "apps/dgemm.h"

#include <cmath>
#include <vector>

#include "common/checksum.h"
#include "common/math_utils.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"

namespace impacc::apps {

namespace {

constexpr int kTagA = 11;
constexpr int kTagC = 12;

double a_init(long i, long j) { return static_cast<double>((i * 31 + j) % 7) - 3.0; }
double b_init(long i, long j) { return static_cast<double>((i + j * 17) % 5) - 2.0; }

struct Shared {
  double checksum = 0;
  bool verified = false;
  bool verify_failed = false;
};

void task_main(const DgemmConfig& cfg, Shared* shared) {
  core::Task& t = core::require_task("dgemm");
  const bool fn = t.functional();
  const bool im = t.rt->is_impacc();
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  const int size = mpi::comm_size(w);
  const long n = cfg.n;
  const long row0 = chunk_begin(n, size, rank);
  const long rows = chunk_begin(n, size, rank + 1) - row0;
  const std::uint64_t bytes_b = static_cast<std::uint64_t>(n) * n * 8;
  const std::uint64_t bytes_block = static_cast<std::uint64_t>(rows) * n * 8;

  // Root owns the full matrices in the node heap (aliasing-eligible).
  double* a = nullptr;
  double* b = nullptr;
  double* c = nullptr;
  if (rank == 0) {
    a = static_cast<double*>(node_malloc(bytes_b));
    b = static_cast<double*>(node_malloc(bytes_b));
    c = static_cast<double*>(node_malloc(bytes_b));
    if (fn) {
      for (long i = 0; i < n; ++i) {
        for (long j = 0; j < n; ++j) {
          a[i * n + j] = a_init(i, j);
          b[i * n + j] = b_init(i, j);
        }
      }
    }
  }

  // Distribute A's row blocks. With IMPACC, same-node tasks alias the
  // root's matrix instead of copying (both sides declare readonly).
  double* my_a = a;
  if (rank == 0) {
    std::vector<mpi::Request> reqs;
    for (int r = 1; r < size; ++r) {
      const long r0 = chunk_begin(n, size, r);
      const long rcnt = chunk_begin(n, size, r + 1) - r0;
      if (im) acc::mpi({.send_readonly = true});
      reqs.push_back(mpi::isend(a + r0 * n, static_cast<int>(rcnt * n),
                                mpi::Datatype::kDouble, r, kTagA, w));
    }
    mpi::waitall(reqs);
  } else {
    my_a = static_cast<double*>(node_malloc(bytes_block));
    if (im) {
      acc::mpi({.recv_readonly = true,
                .recv_ptr_addr = reinterpret_cast<void**>(&my_a)});
    }
    mpi::recv(my_a, static_cast<int>(rows * n), mpi::Datatype::kDouble, 0,
              kTagA, w);
  }

  // Broadcast B (node-aware; aliasing on the intra-node legs under IMPACC).
  double* my_b = b;
  if (rank == 0) {
    if (im) acc::mpi({.send_readonly = true});
  } else {
    my_b = static_cast<double*>(node_malloc(bytes_b));
    if (im) {
      acc::mpi({.recv_readonly = true,
                .recv_ptr_addr = reinterpret_cast<void**>(&my_b)});
    }
  }
  mpi::bcast(my_b, static_cast<int>(n * n), mpi::Datatype::kDouble, 0, w);

  double* my_c = rank == 0 ? c : static_cast<double*>(node_malloc(bytes_block));

  // Device compute. IMPACC streams everything on one activity queue; the
  // baseline uses synchronous constructs (Fig. 4 (a) vs (c)).
  const int q = 1;
  const int data_async = im ? q : acc::kSync;
  acc::copyin(my_a, bytes_block, data_async);
  acc::copyin(my_b, bytes_b, data_async);
  acc::create(my_c, bytes_block);

  auto* da = static_cast<const double*>(acc::deviceptr(my_a));
  auto* db = static_cast<const double*>(acc::deviceptr(my_b));
  auto* dc = static_cast<double*>(acc::deviceptr(my_c));
  const sim::WorkEstimate est{2.0 * static_cast<double>(rows) * n * n,
                              static_cast<double>(bytes_block) * 2 + bytes_b};
  acc::kernel(
      "dgemm",
      [da, db, dc, rows, n] {
        for (long i = 0; i < rows; ++i) {
          for (long j = 0; j < n; ++j) dc[i * n + j] = 0.0;
          for (long k = 0; k < n; ++k) {
            const double aik = da[i * n + k];
            for (long j = 0; j < n; ++j) dc[i * n + j] += aik * db[k * n + j];
          }
        }
      },
      est, data_async);

  // Collect the result at the root.
  if (rank == 0) {
    std::vector<mpi::Request> reqs;
    for (int r = 1; r < size; ++r) {
      const long r0 = chunk_begin(n, size, r);
      const long rcnt = chunk_begin(n, size, r + 1) - r0;
      reqs.push_back(mpi::irecv(c + r0 * n, static_cast<int>(rcnt * n),
                                mpi::Datatype::kDouble, r, kTagC, w));
    }
    acc::update_self(my_c, bytes_block, data_async);
    if (im) acc::wait(q);
    mpi::waitall(reqs);
  } else if (im) {
    // Unified routine: send straight from device memory, on the queue.
    acc::mpi({.send_device = true, .async = q});
    mpi::Request s = mpi::isend(my_c, static_cast<int>(rows * n),
                                mpi::Datatype::kDouble, 0, kTagC, w);
    mpi::wait(s);
    acc::wait(q);
  } else {
    acc::update_self(my_c, bytes_block);
    mpi::send(my_c, static_cast<int>(rows * n), mpi::Datatype::kDouble, 0,
              kTagC, w);
  }

  if (rank == 0 && fn) {
    shared->checksum = kahan_sum(c, static_cast<std::size_t>(n) * n);
    if (cfg.verify) {
      bool ok = true;
      for (long i = 0; i < n && ok; ++i) {
        for (long j = 0; j < n && ok; ++j) {
          double ref = 0;
          for (long k = 0; k < n; ++k) ref += a_init(i, k) * b_init(k, j);
          if (std::abs(ref - c[i * n + j]) > 1e-9 * (std::abs(ref) + 1)) {
            ok = false;
          }
        }
      }
      shared->verified = ok;
      shared->verify_failed = !ok;
    }
  }

  // Teardown: unmap device data, drop heap references (aliased pointers
  // release the producer's block through the reference counts).
  acc::del(my_a);
  acc::del(my_b);
  acc::del(my_c);
  mpi::barrier(w);
  if (rank == 0) {
    node_free(a);
    node_free(b);
    node_free(c);
  } else {
    node_free(my_a);
    node_free(my_b);
    node_free(my_c);
  }
}

}  // namespace

DgemmResult run_dgemm(const core::LaunchOptions& options,
                      const DgemmConfig& config) {
  Shared shared;
  DgemmResult result;
  result.launch =
      launch(options, [&config, &shared] { task_main(config, &shared); });
  result.checksum = shared.checksum;
  result.verified = shared.verified;
  return result;
}

}  // namespace impacc::apps
