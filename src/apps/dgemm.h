// DGEMM benchmark application (section 4.2, Figs. 10-11).
//
// Square double-precision matrix multiply C = A * B. The root task owns
// the full matrices; it distributes a block of A's rows to each task and
// broadcasts B, each task multiplies its block on its accelerator, and the
// root gathers the C blocks. Computation is O(N^3), communication O(N^2).
//
// The IMPACC variant exploits:
//  - node heap aliasing for the read-only inputs (tasks on the root's node
//    share A and B with zero copies),
//  - unified MPI routines with device buffers for the result,
//  - the unified activity queue (no host-side sync points).
// The baseline variant stages everything through host memory with
// explicit waits, as the current MPI+OpenACC model requires.
#pragma once

#include "core/config.h"
#include "core/launch.h"

namespace impacc::apps {

struct DgemmConfig {
  long n = 1024;        // matrix dimension (N x N)
  bool verify = false;  // functional runs: check C against a serial GEMM
};

struct DgemmResult {
  LaunchResult launch;
  bool verified = false;  // true when verify requested and passed
  double checksum = 0;    // Kahan sum over C (functional runs)
};

DgemmResult run_dgemm(const core::LaunchOptions& options,
                      const DgemmConfig& config);

}  // namespace impacc::apps
