// NAS EP (Embarrassingly Parallel) benchmark (section 4.2, Fig. 12).
//
// Generates pairs of uniform randoms with the NAS linear congruential
// generator, applies the Marsaglia polar acceptance test, accumulates the
// Gaussian-deviate sums and the per-annulus counts, and reduces them at
// the end. No communication except the final reduction; kernel time
// dominates — the paper uses it to show IMPACC matches MPI+OpenACC when
// there is nothing to optimize.
#pragma once

#include <array>
#include <cstdint>

#include "core/config.h"
#include "core/launch.h"

namespace impacc::apps {

struct EpConfig {
  // Problem size: 2^m pairs. NAS classes: S=24, W=25, A=28, B=30, C=32,
  // D=36, E=40; the paper's Titan run adds a 64x-E class (m=46).
  int m = 24;
};

struct EpResult {
  LaunchResult launch;
  double sx = 0;                       // sum of X deviates
  double sy = 0;                       // sum of Y deviates
  std::array<std::int64_t, 10> q{};    // annulus counts
  std::int64_t accepted = 0;           // total accepted pairs
};

EpResult run_ep(const core::LaunchOptions& options, const EpConfig& config);

/// Serial reference (host-only; for verification of small sizes).
EpResult ep_reference(int m);

/// NAS class letter -> m exponent ('S','W','A'..'E').
int ep_class_m(char cls);

}  // namespace impacc::apps
