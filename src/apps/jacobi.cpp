#include "apps/jacobi.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/math_utils.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"
#include "ult/sync.h"

namespace impacc::apps {

namespace {

constexpr int kTagUp = 21;    // message travelling toward lower ranks
constexpr int kTagDown = 22;  // message travelling toward higher ranks

double grid_init(long i, long j) {
  return static_cast<double>((i * 7 + j * 13) % 11) / 11.0;
}

/// One serial Jacobi sweep over the full grid (reference).
void serial_sweep(std::vector<double>& u, std::vector<double>& unew, long n) {
  for (long i = 1; i < n - 1; ++i) {
    for (long j = 1; j < n - 1; ++j) {
      unew[i * n + j] = 0.25 * (u[(i - 1) * n + j] + u[(i + 1) * n + j] +
                                u[i * n + j - 1] + u[i * n + j + 1]);
    }
  }
  std::swap(u, unew);
}

struct Shared {
  ult::SpinLock lock;
  double checksum = 0;
  bool verified = false;
};

void task_main(const JacobiConfig& cfg, Shared* shared) {
  core::Task& t = core::require_task("jacobi");
  const bool fn = t.functional();
  const bool im = t.rt->is_impacc();
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  const int size = mpi::comm_size(w);
  const long n = cfg.n;
  const long row0 = chunk_begin(n, size, rank);
  const long rows = chunk_begin(n, size, rank + 1) - row0;
  const int up = rank > 0 ? rank - 1 : -1;
  const int down = rank < size - 1 ? rank + 1 : -1;

  // Local block with one halo row on each side: (rows + 2) x n.
  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(rows + 2) * n * 8;
  auto* u = static_cast<double*>(node_malloc(block_bytes));
  auto* unew = static_cast<double*>(node_malloc(block_bytes));
  if (fn) {
    for (long li = 0; li < rows + 2; ++li) {
      const long gi = row0 + li - 1;
      for (long j = 0; j < n; ++j) {
        const double v =
            (gi >= 0 && gi < n) ? grid_init(gi, j) : 0.0;
        u[li * n + j] = v;
        unew[li * n + j] = v;
      }
    }
  }
  acc::copyin(u, block_bytes);
  acc::copyin(unew, block_bytes);

  // Fault tolerance: both blocks are restartable state. The names are
  // bound to the *allocations*; the u/unew pointer swap below is purely
  // logical, so a restored run re-derives the swap parity from the
  // restart iteration instead of checkpointing it.
  ft_protect("jacobi.block0", u, block_bytes);
  ft_protect("jacobi.block1", unew, block_bytes);
  int start_iter = 0;
  if (const int epoch = ft_restore(); epoch > 0 && cfg.checkpoint_every > 0) {
    start_iter = epoch * cfg.checkpoint_every;
    acc::update_device(u, block_bytes);
    acc::update_device(unew, block_bytes);
    if (start_iter % 2 != 0) std::swap(u, unew);
  }

  const int q = 1;  // unified activity queue
  const sim::WorkEstimate est{5.0 * static_cast<double>(rows) * n,
                              static_cast<double>(rows + 2) * n * 8 * 2};

  for (int iter = start_iter; iter < cfg.iterations; ++iter) {
    if (cfg.checkpoint_every > 0 && iter > start_iter &&
        iter % cfg.checkpoint_every == 0) {
      // Quiesce the activity queue first: ft_checkpoint requires no
      // outstanding requests, and the snapshot must see the completed
      // sweep for iteration `iter - 1`.
      if (im) acc::wait(q);
      ft_checkpoint();  // epoch e <=> state after e * checkpoint_every sweeps
    }
    if (im) {
      // Unified routines straight from device memory; the in-order queue
      // sequences transfers and the sweep without host synchronization.
      if (up >= 0) {
        acc::mpi({.recv_device = true, .async = q});
        mpi::irecv(u, static_cast<int>(n), mpi::Datatype::kDouble, up,
                   kTagDown, w);
        acc::mpi({.send_device = true, .async = q});
        mpi::isend(u + n, static_cast<int>(n), mpi::Datatype::kDouble, up,
                   kTagUp, w);
      }
      if (down >= 0) {
        acc::mpi({.recv_device = true, .async = q});
        mpi::irecv(u + (rows + 1) * n, static_cast<int>(n),
                   mpi::Datatype::kDouble, down, kTagUp, w);
        acc::mpi({.send_device = true, .async = q});
        mpi::isend(u + rows * n, static_cast<int>(n), mpi::Datatype::kDouble,
                   down, kTagDown, w);
      }
    } else {
      // Baseline: stage halos through host memory with blocking calls.
      if (up >= 0) acc::update_self(u + n, static_cast<std::uint64_t>(n) * 8);
      if (down >= 0) {
        acc::update_self(u + rows * n, static_cast<std::uint64_t>(n) * 8);
      }
      if (up >= 0 && down >= 0) {
        mpi::sendrecv(u + n, static_cast<int>(n), mpi::Datatype::kDouble, up,
                      kTagUp, u + (rows + 1) * n, static_cast<int>(n),
                      mpi::Datatype::kDouble, down, kTagUp, w);
        mpi::sendrecv(u + rows * n, static_cast<int>(n),
                      mpi::Datatype::kDouble, down, kTagDown, u,
                      static_cast<int>(n), mpi::Datatype::kDouble, up,
                      kTagDown, w);
      } else if (down >= 0) {
        mpi::sendrecv(u + rows * n, static_cast<int>(n),
                      mpi::Datatype::kDouble, down, kTagDown,
                      u + (rows + 1) * n, static_cast<int>(n),
                      mpi::Datatype::kDouble, down, kTagUp, w);
      } else if (up >= 0) {
        mpi::sendrecv(u + n, static_cast<int>(n), mpi::Datatype::kDouble, up,
                      kTagUp, u, static_cast<int>(n), mpi::Datatype::kDouble,
                      up, kTagDown, w);
      }
      if (up >= 0) acc::update_device(u, static_cast<std::uint64_t>(n) * 8);
      if (down >= 0) {
        acc::update_device(u + (rows + 1) * n,
                           static_cast<std::uint64_t>(n) * 8);
      }
    }

    auto* du = static_cast<const double*>(acc::deviceptr(u));
    auto* dn = static_cast<double*>(acc::deviceptr(unew));
    acc::kernel(
        "jacobi-sweep",
        [du, dn, rows, n, row0] {
          for (long li = 1; li <= rows; ++li) {
            const long gi = row0 + li - 1;
            if (gi == 0 || gi == n - 1) continue;  // fixed boundary
            for (long j = 1; j < n - 1; ++j) {
              dn[li * n + j] =
                  0.25 * (du[(li - 1) * n + j] + du[(li + 1) * n + j] +
                          du[li * n + j - 1] + du[li * n + j + 1]);
            }
          }
        },
        est, im ? q : acc::kSync);
    std::swap(u, unew);
  }
  if (im) acc::wait(q);

  // Bring the final block back and drop the mappings.
  acc::update_self(u + n, static_cast<std::uint64_t>(rows) * n * 8);
  acc::del(u);
  acc::del(unew);

  if (fn) {
    // Rank-ordered gather + Kahan at the root rather than reduce(kSum):
    // the summation order is then a pure function of the rank count, so
    // the checksum is bit-for-bit reproducible across schedules and
    // across fault-recovery reruns on a shrunk topology.
    const double local = kahan_sum(u + n, static_cast<std::size_t>(rows) * n);
    std::vector<double> partials(rank == 0 ? static_cast<std::size_t>(size)
                                           : 0);
    mpi::gather(&local, 1, mpi::Datatype::kDouble, partials.data(), 1,
                mpi::Datatype::kDouble, 0, w);
    if (rank == 0) {
      shared->lock.lock();
      shared->checksum = kahan_sum(partials.data(), partials.size());
      shared->lock.unlock();
    }
    if (cfg.verify) {
      // Gather the full grid at the root and compare pointwise.
      std::vector<double> full(rank == 0 ? static_cast<std::size_t>(n) * n : 0);
      std::vector<int> counts(static_cast<std::size_t>(size));
      std::vector<int> displs(static_cast<std::size_t>(size));
      for (int r = 0; r < size; ++r) {
        const long r0 = chunk_begin(n, size, r);
        counts[static_cast<std::size_t>(r)] =
            static_cast<int>((chunk_begin(n, size, r + 1) - r0) * n);
        displs[static_cast<std::size_t>(r)] = static_cast<int>(r0 * n);
      }
      mpi::gatherv(u + n, static_cast<int>(rows * n), mpi::Datatype::kDouble,
                   full.data(), counts.data(), displs.data(),
                   mpi::Datatype::kDouble, 0, w);
      if (rank == 0) {
        std::vector<double> ref(static_cast<std::size_t>(n) * n);
        std::vector<double> scratch(static_cast<std::size_t>(n) * n);
        for (long i = 0; i < n; ++i) {
          for (long j = 0; j < n; ++j) {
            ref[static_cast<std::size_t>(i * n + j)] = grid_init(i, j);
            scratch[static_cast<std::size_t>(i * n + j)] = grid_init(i, j);
          }
        }
        for (int it = 0; it < cfg.iterations; ++it) {
          serial_sweep(ref, scratch, n);
        }
        bool ok = true;
        for (std::size_t i = 0; i < ref.size() && ok; ++i) {
          if (std::abs(ref[i] - full[i]) > 1e-12) ok = false;
        }
        shared->lock.lock();
        shared->verified = ok;
        shared->lock.unlock();
      }
    }
  }

  mpi::barrier(w);
  node_free(u);
  node_free(unew);
}

}  // namespace

JacobiResult run_jacobi(const core::LaunchOptions& options,
                        const JacobiConfig& config) {
  Shared shared;
  JacobiResult result;
  result.launch =
      launch(options, [&config, &shared] { task_main(config, &shared); });
  result.checksum = shared.checksum;
  result.verified = shared.verified;
  return result;
}

}  // namespace impacc::apps
