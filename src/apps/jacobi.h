// 2-D Jacobi iteration benchmark (section 4.2, Figs. 13-14).
//
// Five-point stencil on an N x N grid, partitioned in one dimension (row
// blocks). Each iteration every task updates its block on its accelerator
// and exchanges boundary rows with its two neighbours.
//
// The IMPACC variant sends/receives the halo rows directly from device
// memory (#pragma acc mpi sendbuf(device)/recvbuf(device)); matched
// intra-node pairs become single direct device-to-device PCIe copies
// (Fig. 6/14). The baseline stages each halo through host memory:
// update self -> MPI -> update device.
#pragma once

#include "core/config.h"
#include "core/launch.h"

namespace impacc::apps {

struct JacobiConfig {
  long n = 1024;        // grid dimension (N x N)
  int iterations = 10;  // Jacobi sweeps
  bool verify = false;  // functional runs: compare against a serial sweep
  // Cut a coordinated checkpoint (ft_checkpoint) every this many sweeps;
  // 0 disables. Only meaningful when a fault plan is armed — unarmed runs
  // treat every ft_* call as a no-op.
  int checkpoint_every = 0;
};

struct JacobiResult {
  LaunchResult launch;
  bool verified = false;
  double checksum = 0;  // Kahan sum of the final grid (functional runs)
};

JacobiResult run_jacobi(const core::LaunchOptions& options,
                        const JacobiConfig& config);

}  // namespace impacc::apps
