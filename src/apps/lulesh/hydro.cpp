#include "apps/lulesh/hydro.h"

#include <algorithm>
#include <cmath>

namespace impacc::apps::lulesh {

namespace {
long hidx(long x, long y, long z, long hs) { return (x * hs + y) * hs + z; }
}  // namespace

void eos_kernel(const double* e, const double* v, double* p_halo, long s,
                double gamma) {
  const long hs = s + 2;
  for (long x = 0; x < s; ++x) {
    for (long y = 0; y < s; ++y) {
      for (long z = 0; z < s; ++z) {
        const long i = (x * s + y) * s + z;
        p_halo[hidx(x + 1, y + 1, z + 1, hs)] = (gamma - 1.0) * e[i] / v[i];
      }
    }
  }
}

double update_kernel(double* e, double* v, const double* p_halo, long s,
                     double dt, double gamma) {
  const long hs = s + 2;
  double cmax = 0.0;
  for (long x = 0; x < s; ++x) {
    for (long y = 0; y < s; ++y) {
      for (long z = 0; z < s; ++z) {
        const long i = (x * s + y) * s + z;
        // 27-point neighbourhood sum in a fixed order: the corner terms
        // are what make the full 26-neighbour exchange semantically
        // necessary (LULESH gathers nodal quantities the same way).
        double sum = 0.0;
        for (int dx = -1; dx <= 1; ++dx) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dz = -1; dz <= 1; ++dz) {
              sum += p_halo[hidx(x + 1 + dx, y + 1 + dy, z + 1 + dz, hs)];
            }
          }
        }
        const double p = p_halo[hidx(x + 1, y + 1, z + 1, hs)];
        const double flux = sum / 27.0 - p;  // relax toward the local mean
        e[i] += dt * flux;
        v[i] = std::max(0.1, v[i] + 0.1 * dt * flux);
        const double pnew = std::max(1e-12, (gamma - 1.0) * e[i] / v[i]);
        cmax = std::max(cmax, std::sqrt(gamma * pnew / v[i]));
      }
    }
  }
  return cmax;
}

double eos_flops(long s) { return 3.0 * static_cast<double>(s) * s * s; }

double update_flops(long s) { return 40.0 * static_cast<double>(s) * s * s; }

}  // namespace impacc::apps::lulesh
