#include "apps/lulesh/mesh.h"

#include "common/types.h"

namespace impacc::apps::lulesh {

const std::array<Direction, 26>& all_directions() {
  static const std::array<Direction, 26> dirs = [] {
    std::array<Direction, 26> out{};
    int k = 0;
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          out[static_cast<std::size_t>(k++)] = Direction{dx, dy, dz};
        }
      }
    }
    return out;
  }();
  return dirs;
}

std::array<int, 3> Decomp3D::coords(int rank) const {
  const int cz = rank % p_;
  const int cy = (rank / p_) % p_;
  const int cx = rank / (p_ * p_);
  return {cx, cy, cz};
}

int Decomp3D::rank_at(int cx, int cy, int cz) const {
  if (cx < 0 || cx >= p_ || cy < 0 || cy >= p_ || cz < 0 || cz >= p_) {
    return -1;
  }
  return (cx * p_ + cy) * p_ + cz;
}

int Decomp3D::neighbor(int rank, const Direction& d) const {
  const auto c = coords(rank);
  return rank_at(c[0] + d.dx, c[1] + d.dy, c[2] + d.dz);
}

namespace {

/// The interior coordinate range along one axis for sends toward `d`:
/// the single boundary layer when d != 0, the whole interior otherwise.
std::pair<long, long> send_range(int d, long s) {
  if (d < 0) return {1, 2};          // low boundary layer
  if (d > 0) return {s, s + 1};      // high boundary layer
  return {1, s + 1};                 // full interior
}

/// The halo coordinate range that receives data arriving FROM direction d.
std::pair<long, long> recv_range(int d, long s) {
  if (d < 0) return {0, 1};          // low halo shell
  if (d > 0) return {s + 1, s + 2};  // high halo shell
  return {1, s + 1};
}

}  // namespace

std::vector<long> Decomp3D::pack_indices(const Direction& d) const {
  std::vector<long> out;
  out.reserve(static_cast<std::size_t>(d.cells(s_)));
  const auto [x0, x1] = send_range(d.dx, s_);
  const auto [y0, y1] = send_range(d.dy, s_);
  const auto [z0, z1] = send_range(d.dz, s_);
  for (long x = x0; x < x1; ++x) {
    for (long y = y0; y < y1; ++y) {
      for (long z = z0; z < z1; ++z) out.push_back(hindex(x, y, z));
    }
  }
  IMPACC_CHECK(static_cast<long>(out.size()) == d.cells(s_));
  return out;
}

std::vector<long> Decomp3D::unpack_indices(const Direction& d) const {
  std::vector<long> out;
  out.reserve(static_cast<std::size_t>(d.cells(s_)));
  const auto [x0, x1] = recv_range(d.dx, s_);
  const auto [y0, y1] = recv_range(d.dy, s_);
  const auto [z0, z1] = recv_range(d.dz, s_);
  for (long x = x0; x < x1; ++x) {
    for (long y = y0; y < y1; ++y) {
      for (long z = z0; z < z1; ++z) out.push_back(hindex(x, y, z));
    }
  }
  IMPACC_CHECK(static_cast<long>(out.size()) == d.cells(s_));
  return out;
}

}  // namespace impacc::apps::lulesh
