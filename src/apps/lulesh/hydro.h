// Physics kernels for the LULESH proxy.
//
// A reduced staggered-mesh shock-hydro update that preserves LULESH's
// computational structure: an equation-of-state pass over the elements, a
// 27-point (corner-coupled) force/gradient pass that requires halo data
// from all 26 neighbours, a state update, and a Courant timestep
// reduction. Pure array code — unit-testable without the runtime, and the
// serial reference for decomposition-independence tests.
#pragma once

#include <cstdint>

namespace impacc::apps::lulesh {

struct HydroParams {
  double gamma = 1.4;       // ideal-gas EOS exponent
  double courant = 0.2;     // Courant factor for the timestep
  double initial_e = 0.01;  // background internal energy
  double blast_e = 10.0;    // energy deposited in the origin element
};

/// EOS: p = (gamma-1) * e / v, written into the interior of the haloed
/// pressure array (side s+2). e and v are s^3 interior arrays.
void eos_kernel(const double* e, const double* v, double* p_halo, long s,
                double gamma);

/// 27-point update: diffuse energy toward the neighbourhood average and
/// adjust relative volume; returns the local maximum sound speed for the
/// Courant reduction. Reads the full haloed pressure array.
double update_kernel(double* e, double* v, const double* p_halo, long s,
                     double dt, double gamma);

/// Flops/bytes estimates for the roofline model.
double eos_flops(long s);
double update_flops(long s);

}  // namespace impacc::apps::lulesh
