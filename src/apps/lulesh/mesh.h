// 3-D domain decomposition and halo packing for the LULESH proxy
// (section 4.2, Fig. 15).
//
// LULESH decomposes a cubic mesh over a perfect-cube number of tasks in a
// 3-D Cartesian topology and exchanges surface data with up to 26 nearest
// neighbours (6 faces, 12 edges, 8 corners). This header holds the
// decomposition arithmetic and the halo pack/unpack index logic, kept free
// of any runtime dependency so it is unit-testable.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace impacc::apps::lulesh {

/// One of the 26 neighbour directions: each component in {-1, 0, +1},
/// not all zero.
struct Direction {
  int dx = 0;
  int dy = 0;
  int dz = 0;

  /// Cells exchanged in this direction for a local edge length `s`:
  /// s^2 for faces, s for edges, 1 for corners.
  long cells(long s) const {
    long c = 1;
    c *= dx == 0 ? s : 1;
    c *= dy == 0 ? s : 1;
    c *= dz == 0 ? s : 1;
    return c;
  }

  Direction opposite() const { return {-dx, -dy, -dz}; }

  /// Stable index in [0, 26) used as the message tag. The center (0,0,0)
  /// is not a direction and is skipped in the numbering.
  int index() const {
    const int code = (dx + 1) * 9 + (dy + 1) * 3 + (dz + 1);
    return code > 13 ? code - 1 : code;
  }
};

/// All 26 directions in a fixed, index()-consistent order.
const std::array<Direction, 26>& all_directions();

/// Decomposition of a (p*s)^3 element mesh over p^3 tasks.
class Decomp3D {
 public:
  Decomp3D(int p, long s) : p_(p), s_(s) {}

  int tasks_per_side() const { return p_; }
  long local_side() const { return s_; }
  long global_side() const { return p_ * s_; }

  /// Task coordinates of rank r (row-major, matching CartComm).
  std::array<int, 3> coords(int rank) const;

  /// Rank at coordinates, or -1 outside the task grid.
  int rank_at(int cx, int cy, int cz) const;

  /// Neighbour rank of `rank` in direction d, or -1 at the domain edge.
  int neighbor(int rank, const Direction& d) const;

  // --- halo array indexing ---------------------------------------------------
  // The haloed local array has side s+2; interior cells are 1..s.

  long halo_side() const { return s_ + 2; }
  long halo_volume() const { return halo_side() * halo_side() * halo_side(); }
  long interior_volume() const { return s_ * s_ * s_; }

  long hindex(long x, long y, long z) const {
    const long hs = halo_side();
    return (x * hs + y) * hs + z;
  }

  /// Flat indices (into the haloed array) of the interior cells that must
  /// be SENT toward direction d, in a fixed deterministic order.
  std::vector<long> pack_indices(const Direction& d) const;

  /// Flat indices of the halo cells that RECEIVE data arriving from
  /// direction d (i.e. sent by the neighbour at d toward us).
  std::vector<long> unpack_indices(const Direction& d) const;

 private:
  int p_;
  long s_;
};

}  // namespace impacc::apps::lulesh
