#include "apps/lulesh/driver.h"

#include <cmath>
#include <vector>

#include "apps/lulesh/hydro.h"
#include "apps/lulesh/mesh.h"
#include "common/checksum.h"
#include "common/math_utils.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"
#include "ult/sync.h"

namespace impacc::apps {

namespace {

using lulesh::all_directions;
using lulesh::Decomp3D;
using lulesh::Direction;
using lulesh::HydroParams;

struct Shared {
  ult::SpinLock lock;
  double total_energy = 0;
  double final_dt = 0;
  bool verified = false;
};

void task_main(const LuleshConfig& cfg, Shared* shared) {
  core::Task& t = core::require_task("lulesh");
  const bool fn = t.functional();
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  const int size = mpi::comm_size(w);
  const int p = icbrt(size);
  IMPACC_CHECK_MSG(p * p * p == size,
                   "LULESH requires a perfect-cube task count");
  const long s = cfg.s;
  const Decomp3D dec(p, s);
  const HydroParams par;

  // 3-D Cartesian topology; its row-major rank layout matches Decomp3D.
  mpi::CartComm* cart = mpi::cart_create(w, {p, p, p}, {0, 0, 0});
  {
    const auto cc = cart->coords(rank);
    const auto dc = dec.coords(rank);
    IMPACC_CHECK(cc[0] == dc[0] && cc[1] == dc[1] && cc[2] == dc[2]);
  }

  const std::uint64_t interior_bytes =
      static_cast<std::uint64_t>(dec.interior_volume()) * 8;
  const std::uint64_t halo_bytes =
      static_cast<std::uint64_t>(dec.halo_volume()) * 8;

  // Surface regions: one contiguous block holding all 26 per-direction
  // segments (6 faces + 12 edges + 8 corners).
  std::array<long, 26> seg_off{};
  long surface_cells = 0;
  for (const Direction& d : all_directions()) {
    seg_off[static_cast<std::size_t>(d.index())] = surface_cells;
    surface_cells += d.cells(s);
  }
  const std::uint64_t surface_bytes =
      static_cast<std::uint64_t>(surface_cells) * 8;

  auto* e = static_cast<double*>(node_malloc(interior_bytes));
  auto* v = static_cast<double*>(node_malloc(interior_bytes));
  auto* p_halo = static_cast<double*>(node_malloc(halo_bytes));
  auto* send_region = static_cast<double*>(node_malloc(surface_bytes));
  auto* recv_region = static_cast<double*>(node_malloc(surface_bytes));

  if (fn) {
    for (long i = 0; i < dec.interior_volume(); ++i) {
      e[i] = par.initial_e;
      v[i] = 1.0;
    }
    const auto c = dec.coords(rank);
    if (c[0] == 0 && c[1] == 0 && c[2] == 0) {
      e[0] = par.blast_e;  // Sedov-like point deposition at the origin
    }
    for (long i = 0; i < dec.halo_volume(); ++i) p_halo[i] = 0.0;
    for (long i = 0; i < surface_cells; ++i) {
      send_region[i] = 0.0;
      recv_region[i] = 0.0;
    }
  }

  acc::copyin(e, interior_bytes);
  acc::copyin(v, interior_bytes);
  acc::copyin(p_halo, halo_bytes);
  acc::copyin(send_region, surface_bytes);
  acc::copyin(recv_region, surface_bytes);

  auto* de = static_cast<double*>(acc::deviceptr(e));
  auto* dv = static_cast<double*>(acc::deviceptr(v));
  auto* dp = static_cast<double*>(acc::deviceptr(p_halo));
  auto* dsend = static_cast<double*>(acc::deviceptr(send_region));
  auto* drecv = static_cast<double*>(acc::deviceptr(recv_region));

  // Precompute pack/unpack index lists (what the real code's gather/
  // scatter loops encode).
  std::array<std::vector<long>, 26> pack_idx;
  std::array<std::vector<long>, 26> unpack_idx;
  std::array<int, 26> nbr{};
  for (const Direction& d : all_directions()) {
    const auto k = static_cast<std::size_t>(d.index());
    nbr[k] = dec.neighbor(rank, d);
    if (nbr[k] < 0) continue;
    pack_idx[k] = dec.pack_indices(d);
    unpack_idx[k] = dec.unpack_indices(d);
  }

  const sim::WorkEstimate eos_est{lulesh::eos_flops(s),
                                  static_cast<double>(interior_bytes) * 3};
  const sim::WorkEstimate upd_est{lulesh::update_flops(s),
                                  static_cast<double>(interior_bytes) * 4 +
                                      static_cast<double>(halo_bytes)};
  const sim::WorkEstimate pack_est{static_cast<double>(surface_cells),
                                   static_cast<double>(surface_bytes) * 2};

  double dt = 0.01;
  double cmax_local = 0.0;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    acc::kernel(
        "eos", [de, dv, dp, s, &par] { lulesh::eos_kernel(de, dv, dp, s,
                                                          par.gamma); },
        eos_est);

    acc::kernel(
        "pack-surface",
        [dp, dsend, &pack_idx, &seg_off, &nbr] {
          for (std::size_t k = 0; k < 26; ++k) {
            if (nbr[k] < 0) continue;
            double* out = dsend + seg_off[k];
            const auto& idx = pack_idx[k];
            for (std::size_t i = 0; i < idx.size(); ++i) out[i] = dp[idx[i]];
          }
        },
        pack_est);

    // Stage the surface shell to the host; exchange host-to-host with all
    // 26 neighbours; stage back. (The paper runs LULESH unmodified, so no
    // device-buffer directives here.)
    acc::update_self(send_region, surface_bytes);
    std::vector<mpi::Request> reqs;
    reqs.reserve(52);
    for (const Direction& d : all_directions()) {
      const auto k = static_cast<std::size_t>(d.index());
      if (nbr[k] < 0) continue;
      reqs.push_back(mpi::irecv(recv_region + seg_off[k],
                                static_cast<int>(d.cells(s)),
                                mpi::Datatype::kDouble, nbr[k],
                                d.opposite().index(), cart));
    }
    for (const Direction& d : all_directions()) {
      const auto k = static_cast<std::size_t>(d.index());
      if (nbr[k] < 0) continue;
      reqs.push_back(mpi::isend(send_region + seg_off[k],
                                static_cast<int>(d.cells(s)),
                                mpi::Datatype::kDouble, nbr[k], d.index(),
                                cart));
    }
    mpi::waitall(reqs);
    acc::update_device(recv_region, surface_bytes);

    acc::kernel(
        "unpack-surface",
        [dp, drecv, &unpack_idx, &seg_off, &nbr] {
          for (std::size_t k = 0; k < 26; ++k) {
            if (nbr[k] < 0) continue;
            const double* in = drecv + seg_off[k];
            const auto& idx = unpack_idx[k];
            for (std::size_t i = 0; i < idx.size(); ++i) dp[idx[i]] = in[i];
          }
        },
        pack_est);

    acc::kernel(
        "hydro-update",
        [de, dv, dp, s, dt, &par, &cmax_local] {
          cmax_local = lulesh::update_kernel(de, dv, dp, s, dt, par.gamma);
        },
        upd_est);

    // Courant condition: global timestep for the next cycle.
    double cmax_global = 0.0;
    mpi::allreduce(&cmax_local, &cmax_global, 1, mpi::Datatype::kDouble,
                   mpi::Op::kMax, cart);
    if (fn && cmax_global > 0) dt = par.courant / cmax_global;
  }

  acc::update_self(e, interior_bytes);
  if (fn) {
    const double local =
        kahan_sum(e, static_cast<std::size_t>(dec.interior_volume()));
    double total = 0;
    mpi::reduce(&local, &total, 1, mpi::Datatype::kDouble, mpi::Op::kSum, 0,
                cart);
    if (rank == 0) {
      shared->lock.lock();
      shared->total_energy = total;
      shared->final_dt = dt;
      shared->lock.unlock();
    }
  }

  acc::del(e);
  acc::del(v);
  acc::del(p_halo);
  acc::del(send_region);
  acc::del(recv_region);
  mpi::barrier(w);
  node_free(e);
  node_free(v);
  node_free(p_halo);
  node_free(send_region);
  node_free(recv_region);
}

}  // namespace

LuleshResult run_lulesh(const core::LaunchOptions& options,
                        const LuleshConfig& config) {
  Shared shared;
  LuleshResult result;
  result.launch =
      launch(options, [&config, &shared] { task_main(config, &shared); });
  result.total_energy = shared.total_energy;
  result.final_dt = shared.final_dt;
  if (config.verify) {
    double ref_dt = 0;
    const int tasks = result.launch.num_tasks;
    const double ref =
        lulesh_reference(icbrt(tasks), config.s, config.iterations, &ref_dt);
    result.verified =
        std::abs(ref - result.total_energy) <=
            1e-9 * (std::abs(ref) + 1.0) &&
        std::abs(ref_dt - result.final_dt) <= 1e-12 * (std::abs(ref_dt) + 1);
  }
  return result;
}

double lulesh_reference(int tasks_per_side, long s, int iterations,
                        double* final_dt) {
  const long g = tasks_per_side * s;  // global mesh side
  const HydroParams par;
  std::vector<double> e(static_cast<std::size_t>(g * g * g), par.initial_e);
  std::vector<double> v(static_cast<std::size_t>(g * g * g), 1.0);
  std::vector<double> ph(static_cast<std::size_t>((g + 2) * (g + 2) * (g + 2)),
                         0.0);
  e[0] = par.blast_e;
  double dt = 0.01;
  for (int iter = 0; iter < iterations; ++iter) {
    lulesh::eos_kernel(e.data(), v.data(), ph.data(), g, par.gamma);
    const double cmax =
        lulesh::update_kernel(e.data(), v.data(), ph.data(), g, dt, par.gamma);
    if (cmax > 0) dt = par.courant / cmax;
  }
  if (final_dt != nullptr) *final_dt = dt;
  return kahan_sum(e.data(), e.size());
}

}  // namespace impacc::apps
