// LULESH proxy driver (section 4.2, Fig. 15).
//
// Weak scaling over perfect-cube task counts: every task owns an s^3
// element block of a (p*s)^3 mesh in a 3-D Cartesian topology. Each
// iteration: EOS pass -> pack surface data on the device -> stage to the
// host -> 26-neighbour exchange (host-to-host, like the unmodified
// LULESH 2.0.2 the paper runs) -> stage back -> unpack -> 27-point update
// -> Courant allreduce. The source is identical for IMPACC and the
// baseline; the performance difference comes entirely from the runtime
// (message fusion vs IPC staging, NUMA pinning).
#pragma once

#include "core/config.h"
#include "core/launch.h"

namespace impacc::apps {

struct LuleshConfig {
  long s = 16;          // elements per task edge (problem size per task)
  int iterations = 10;  // hydro cycles
  bool verify = false;  // functional: compare against the serial reference
};

struct LuleshResult {
  LaunchResult launch;
  double total_energy = 0;  // sum of e over the global mesh (functional)
  double final_dt = 0;
  bool verified = false;
};

LuleshResult run_lulesh(const core::LaunchOptions& options,
                        const LuleshConfig& config);

/// Serial reference: the same physics on the undecomposed global mesh.
/// Returns the total energy after `iterations` cycles.
double lulesh_reference(int tasks_per_side, long s, int iterations,
                        double* final_dt = nullptr);

}  // namespace impacc::apps
