// 2-D heat stencil with a two-dimensional task decomposition (extension).
//
// The paper's Jacobi partitions in one dimension, so every halo is a
// contiguous row. A 2-D decomposition also exchanges COLUMNS, the classic
// use case for MPI derived datatypes: the column halo is sent and
// received as one type_vector (count = local rows, stride = the row
// pitch) instead of hand-packed buffers. Host-staged halos
// (update self -> MPI -> update device) like LULESH.
#pragma once

#include "core/config.h"
#include "core/launch.h"

namespace impacc::apps {

struct Stencil2dConfig {
  long n = 256;         // global grid dimension (N x N)
  int iterations = 8;
  bool verify = false;  // compare against serial sweeps
};

struct Stencil2dResult {
  LaunchResult launch;
  bool verified = false;
  double checksum = 0;
  int px = 0;  // task grid actually used
  int py = 0;
};

Stencil2dResult run_stencil2d(const core::LaunchOptions& options,
                              const Stencil2dConfig& config);

/// Near-square factorization of `tasks` into {px, py}, px >= py.
std::pair<int, int> stencil2d_grid(int tasks);

}  // namespace impacc::apps
