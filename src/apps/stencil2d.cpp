#include "apps/stencil2d.h"

#include <cmath>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "common/math_utils.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"
#include "mpi/datatype.h"
#include "ult/sync.h"

namespace impacc::apps {

namespace {

constexpr int kTagRow = 31;   // vertical (row) halo exchange
constexpr int kTagCol = 32;   // horizontal (column) halo exchange

double grid_init(long i, long j) {
  return static_cast<double>((i * 5 + j * 3) % 13) / 13.0;
}

void serial_sweep(std::vector<double>& u, std::vector<double>& unew, long n) {
  for (long i = 1; i < n - 1; ++i) {
    for (long j = 1; j < n - 1; ++j) {
      unew[i * n + j] =
          u[i * n + j] +
          0.2 * (u[(i - 1) * n + j] + u[(i + 1) * n + j] + u[i * n + j - 1] +
                 u[i * n + j + 1] - 4.0 * u[i * n + j]);
    }
  }
  std::swap(u, unew);
}

struct Shared {
  ult::SpinLock lock;
  double checksum = 0;
  bool verified = false;
  int px = 0;
  int py = 0;
};

void task_main(const Stencil2dConfig& cfg, Shared* shared) {
  core::Task& t = core::require_task("stencil2d");
  const bool fn = t.functional();
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  const int size = mpi::comm_size(w);
  const auto [px, py] = stencil2d_grid(size);
  const long n = cfg.n;

  mpi::CartComm* cart = mpi::cart_create(w, {px, py}, {0, 0});
  const auto coords = cart->coords(rank);
  const long row0 = chunk_begin(n, px, coords[0]);
  const long rows = chunk_begin(n, px, coords[0] + 1) - row0;
  const long col0 = chunk_begin(n, py, coords[1]);
  const long cols = chunk_begin(n, py, coords[1] + 1) - col0;
  const long pitch = cols + 2;  // haloed row length

  int up = -1;
  int down = -1;
  int left = -1;
  int right = -1;
  cart->shift(rank, 0, 1, &up, &down);
  cart->shift(rank, 1, 1, &left, &right);

  // The column halo: one element per local row, stride = pitch.
  const mpi::Datatype col_type = mpi::type_vector(
      static_cast<int>(rows), 1, static_cast<int>(pitch),
      mpi::Datatype::kDouble);

  const std::uint64_t block_bytes =
      static_cast<std::uint64_t>(rows + 2) * pitch * 8;
  auto* u = static_cast<double*>(node_malloc(block_bytes));
  auto* unew = static_cast<double*>(node_malloc(block_bytes));
  if (fn) {
    for (long li = 0; li < rows + 2; ++li) {
      const long gi = row0 + li - 1;
      for (long lj = 0; lj < pitch; ++lj) {
        const long gj = col0 + lj - 1;
        const double v = (gi >= 0 && gi < n && gj >= 0 && gj < n)
                             ? grid_init(gi, gj)
                             : 0.0;
        u[li * pitch + lj] = v;
        unew[li * pitch + lj] = v;
      }
    }
  }
  acc::copyin(u, block_bytes);
  acc::copyin(unew, block_bytes);

  const sim::WorkEstimate est{6.0 * static_cast<double>(rows) * cols,
                              static_cast<double>(block_bytes) * 2};

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    // Stage the four boundary strips to the host. Rows are contiguous;
    // columns ride whole-row updates (interior rows), which also carry
    // the column boundary cells.
    acc::update_self(u + pitch, static_cast<std::uint64_t>(rows) * pitch * 8);

    std::vector<mpi::Request> reqs;
    // Row halos (contiguous doubles).
    if (up >= 0) {
      reqs.push_back(mpi::irecv(u + 1, static_cast<int>(cols),
                                mpi::Datatype::kDouble, up, kTagRow, cart));
      reqs.push_back(mpi::isend(u + pitch + 1, static_cast<int>(cols),
                                mpi::Datatype::kDouble, up, kTagRow, cart));
    }
    if (down >= 0) {
      reqs.push_back(mpi::irecv(u + (rows + 1) * pitch + 1,
                                static_cast<int>(cols), mpi::Datatype::kDouble,
                                down, kTagRow, cart));
      reqs.push_back(mpi::isend(u + rows * pitch + 1, static_cast<int>(cols),
                                mpi::Datatype::kDouble, down, kTagRow, cart));
    }
    // Column halos: ONE derived-type message each way, no manual packing.
    if (left >= 0) {
      reqs.push_back(
          mpi::irecv(u + pitch, 1, col_type, left, kTagCol, cart));
      reqs.push_back(
          mpi::isend(u + pitch + 1, 1, col_type, left, kTagCol, cart));
    }
    if (right >= 0) {
      reqs.push_back(
          mpi::irecv(u + pitch + cols + 1, 1, col_type, right, kTagCol, cart));
      reqs.push_back(
          mpi::isend(u + pitch + cols, 1, col_type, right, kTagCol, cart));
    }
    mpi::waitall(reqs);

    // Halo strips back to the device (whole block keeps it simple; the
    // cost model charges the real bytes).
    acc::update_device(u, block_bytes);

    auto* du = static_cast<const double*>(acc::deviceptr(u));
    auto* dn = static_cast<double*>(acc::deviceptr(unew));
    acc::kernel(
        "stencil2d-sweep",
        [du, dn, rows, cols, pitch, row0, col0, n] {
          for (long li = 1; li <= rows; ++li) {
            const long gi = row0 + li - 1;
            if (gi == 0 || gi == n - 1) continue;
            for (long lj = 1; lj <= cols; ++lj) {
              const long gj = col0 + lj - 1;
              if (gj == 0 || gj == n - 1) continue;
              const long c = li * pitch + lj;
              dn[c] = du[c] + 0.2 * (du[c - pitch] + du[c + pitch] +
                                     du[c - 1] + du[c + 1] - 4.0 * du[c]);
            }
          }
        },
        est);
    std::swap(u, unew);
  }

  acc::update_self(u, block_bytes);
  acc::del(u);
  acc::del(unew);

  if (fn) {
    double local = 0;
    for (long li = 1; li <= rows; ++li) {
      local += kahan_sum(u + li * pitch + 1, static_cast<std::size_t>(cols));
    }
    double total = 0;
    mpi::reduce(&local, &total, 1, mpi::Datatype::kDouble, mpi::Op::kSum, 0,
                w);
    bool ok = true;
    if (cfg.verify) {
      // Gather blocks at the root row by row with gatherv-free approach:
      // every rank sends its rows; root places them.
      if (rank == 0) {
        std::vector<double> full(static_cast<std::size_t>(n) * n, 0);
        for (long li = 0; li < rows; ++li) {
          for (long lj = 0; lj < cols; ++lj) {
            full[static_cast<std::size_t>((row0 + li) * n + col0 + lj)] =
                u[(li + 1) * pitch + lj + 1];
          }
        }
        for (int r = 1; r < size; ++r) {
          const auto c = cart->coords(r);
          const long rr0 = chunk_begin(n, px, c[0]);
          const long rrs = chunk_begin(n, px, c[0] + 1) - rr0;
          const long cc0 = chunk_begin(n, py, c[1]);
          const long ccs = chunk_begin(n, py, c[1] + 1) - cc0;
          std::vector<double> block(static_cast<std::size_t>(rrs * ccs));
          mpi::recv(block.data(), static_cast<int>(rrs * ccs),
                    mpi::Datatype::kDouble, r, 77, w);
          for (long li = 0; li < rrs; ++li) {
            for (long lj = 0; lj < ccs; ++lj) {
              full[static_cast<std::size_t>((rr0 + li) * n + cc0 + lj)] =
                  block[static_cast<std::size_t>(li * ccs + lj)];
            }
          }
        }
        std::vector<double> ref(static_cast<std::size_t>(n) * n);
        std::vector<double> scratch(static_cast<std::size_t>(n) * n);
        for (long i = 0; i < n; ++i) {
          for (long j = 0; j < n; ++j) {
            ref[static_cast<std::size_t>(i * n + j)] = grid_init(i, j);
            scratch[static_cast<std::size_t>(i * n + j)] = grid_init(i, j);
          }
        }
        for (int it = 0; it < cfg.iterations; ++it) serial_sweep(ref, scratch, n);
        for (std::size_t i = 0; i < ref.size() && ok; ++i) {
          if (std::abs(ref[i] - full[i]) > 1e-12) ok = false;
        }
      } else {
        // Pack interior rows contiguously and ship to the root.
        std::vector<double> block(static_cast<std::size_t>(rows * cols));
        for (long li = 0; li < rows; ++li) {
          for (long lj = 0; lj < cols; ++lj) {
            block[static_cast<std::size_t>(li * cols + lj)] =
                u[(li + 1) * pitch + lj + 1];
          }
        }
        mpi::send(block.data(), static_cast<int>(rows * cols),
                  mpi::Datatype::kDouble, 0, 77, w);
      }
    }
    if (rank == 0) {
      shared->lock.lock();
      shared->checksum = total;
      shared->verified = ok && cfg.verify;
      shared->px = px;
      shared->py = py;
      shared->lock.unlock();
    }
  }

  mpi::barrier(w);
  node_free(u);
  node_free(unew);
}

}  // namespace

std::pair<int, int> stencil2d_grid(int tasks) {
  int px = tasks;
  int py = 1;
  for (int d = static_cast<int>(std::sqrt(static_cast<double>(tasks))); d >= 1;
       --d) {
    if (tasks % d == 0) {
      py = d;
      px = tasks / d;
      break;
    }
  }
  return {px, py};
}

Stencil2dResult run_stencil2d(const core::LaunchOptions& options,
                              const Stencil2dConfig& config) {
  Shared shared;
  Stencil2dResult result;
  result.launch =
      launch(options, [&config, &shared] { task_main(config, &shared); });
  result.checksum = shared.checksum;
  result.verified = shared.verified;
  result.px = shared.px;
  result.py = shared.py;
  return result;
}

}  // namespace impacc::apps
