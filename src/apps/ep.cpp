#include "apps/ep.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/nas_rng.h"
#include "core/runtime.h"
#include "core/task.h"
#include "impacc.h"
#include "ult/sync.h"

namespace impacc::apps {

namespace {

struct Tallies {
  double sx = 0;
  double sy = 0;
  std::array<std::int64_t, 10> q{};
};

/// Process `pairs` random pairs starting at pair index `first` of the NAS
/// stream. This is the kernel body (executes on the simulated device).
void ep_chunk(std::int64_t first, std::int64_t pairs, Tallies* out) {
  nas::RandLc rng;
  rng.skip(static_cast<std::uint64_t>(first) * 2);
  for (std::int64_t i = 0; i < pairs; ++i) {
    const double x = 2.0 * rng.next() - 1.0;
    const double y = 2.0 * rng.next() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0) continue;
    const double f = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * f;
    const double gy = y * f;
    const int bin = static_cast<int>(std::fmax(std::fabs(gx), std::fabs(gy)));
    if (bin < 10) {
      out->q[static_cast<std::size_t>(bin)] += 1;
      out->sx += gx;
      out->sy += gy;
    }
  }
}

struct Shared {
  ult::SpinLock lock;
  EpResult result;
};

void task_main(const EpConfig& cfg, Shared* shared) {
  core::Task& t = core::require_task("ep");
  const bool fn = t.functional();
  const bool im = t.rt->is_impacc();
  auto w = mpi::world();
  const int rank = mpi::comm_rank(w);
  const int size = mpi::comm_size(w);

  const std::int64_t total = 1ll << cfg.m;
  const std::int64_t first = chunk_begin(total, size, rank);
  const std::int64_t pairs = chunk_begin(total, size, rank + 1) - first;

  // ~60 flops per pair (2 LCG steps, acceptance test, log/sqrt for the
  // accepted ~78.5%); effectively compute-bound.
  const sim::WorkEstimate est{static_cast<double>(pairs) * 60.0,
                              static_cast<double>(pairs) * 16.0};
  Tallies local;
  const int q = im ? 1 : acc::kSync;
  acc::kernel(
      "ep", [first, pairs, &local] { ep_chunk(first, pairs, &local); }, est, q);
  if (im) acc::wait(1);

  // Final reduction (the only communication EP performs).
  double sums[2] = {local.sx, local.sy};
  double gsums[2] = {0, 0};
  std::int64_t counts[10];
  std::int64_t gcounts[10] = {0};
  for (int i = 0; i < 10; ++i) counts[i] = local.q[static_cast<std::size_t>(i)];
  mpi::allreduce(sums, gsums, 2, mpi::Datatype::kDouble, mpi::Op::kSum, w);
  mpi::allreduce(counts, gcounts, 10, mpi::Datatype::kLong, mpi::Op::kSum, w);

  if (rank == 0 && fn) {
    shared->lock.lock();
    shared->result.sx = gsums[0];
    shared->result.sy = gsums[1];
    for (int i = 0; i < 10; ++i) {
      shared->result.q[static_cast<std::size_t>(i)] = gcounts[i];
      shared->result.accepted += gcounts[i];
    }
    shared->lock.unlock();
  }
}

}  // namespace

EpResult run_ep(const core::LaunchOptions& options, const EpConfig& config) {
  Shared shared;
  shared.result.launch =
      launch(options, [&config, &shared] { task_main(config, &shared); });
  return shared.result;
}

EpResult ep_reference(int m) {
  EpResult r;
  Tallies tall;
  ep_chunk(0, 1ll << m, &tall);
  r.sx = tall.sx;
  r.sy = tall.sy;
  for (int i = 0; i < 10; ++i) {
    r.q[static_cast<std::size_t>(i)] = tall.q[static_cast<std::size_t>(i)];
    r.accepted += tall.q[static_cast<std::size_t>(i)];
  }
  return r;
}

int ep_class_m(char cls) {
  switch (cls) {
    case 'S': return 24;
    case 'W': return 25;
    case 'A': return 28;
    case 'B': return 30;
    case 'C': return 32;
    case 'D': return 36;
    case 'E': return 40;
    default: return 24;
  }
}

}  // namespace impacc::apps
